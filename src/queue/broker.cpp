#include "queue/broker.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <map>
#include <optional>
#include <thread>

#include "obs/payload.hpp"
#include "obs/span.hpp"
#include "prof/profiler.hpp"
#include "queue/wire.hpp"
#include "queue/work_queue.hpp"
#include "runner/checkpoint.hpp"
#include "util/crc32.hpp"
#include "util/json_writer.hpp"
#include "util/subprocess.hpp"

namespace mrp::queue {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t
millisBetween(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               to - from)
        .count();
}

std::string
hex8(std::uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", v);
    return buf;
}

std::string
mixName(const std::vector<trace::TraceSpec>& sources)
{
    std::string out;
    for (const auto& s : sources) {
        if (!out.empty())
            out += "+";
        out += s.displayName();
    }
    return out;
}

/** Identity fields, matching the runner's own stamping exactly so a
 * broker-synthesized failure is indistinguishable (in report and
 * journal bytes) from an in-process one. */
void
stampIdentity(const runner::RunRequest& req, std::size_t index,
              runner::RunResult& out)
{
    out.index = index;
    out.benchmark = mixName(req.sources);
    out.policy = req.policy.name;
    out.label = req.label.empty() ? out.benchmark : req.label;
    out.multiCore = req.isMultiCore();
    out.seed = std::visit(
        [](const auto& cfg) { return cfg.seed; }, req.config);
}

/** Cached metric handles; all null when no registry is attached. */
struct BrokerMetrics
{
    telemetry::Counter* leaseExpired = nullptr;
    telemetry::Counter* requeued = nullptr;
    telemetry::Counter* workerRestarts = nullptr;
    telemetry::Counter* requeueExhausted = nullptr;
    telemetry::Histogram* heartbeatLatency = nullptr;

    explicit BrokerMetrics(telemetry::MetricsRegistry* reg)
    {
        if (!reg)
            return;
        leaseExpired = &reg->counter("queue.lease_expired");
        requeued = &reg->counter("queue.requeued");
        workerRestarts = &reg->counter("queue.worker_restarts");
        requeueExhausted = &reg->counter("queue.requeue_exhausted");
        heartbeatLatency = &reg->histogram(
            "queue.heartbeat_latency_ms",
            telemetry::powerOfTwoBounds(14));
    }
};

struct Slot
{
    proc::Child child;
    unsigned index = 0; //!< stable slot number (the obs worker id)
    bool alive = false;
    bool ready = false; //!< HELLO received and schema-checked
    bool busy = false;
    std::uint64_t jobId = 0;
    std::uint64_t spanId = 0; //!< span of the held lease
    Clock::time_point lastBeat;
};

} // namespace

Broker::Broker(BrokerConfig cfg) : cfg_(std::move(cfg))
{
    fatalIf(cfg_.workerBin.empty(), ErrorCode::Config,
            "broker needs a worker binary path");
    fatalIf(cfg_.queuePath.empty(), ErrorCode::Config,
            "broker needs a durable queue journal path");
    fatalIf(cfg_.workers == 0, ErrorCode::Config,
            "broker needs at least one worker");
    fatalIf(cfg_.maxAttempts == 0, ErrorCode::Config,
            "the lease budget (maxAttempts) must be at least 1");
}

runner::RunSet
Broker::run(const std::vector<runner::RunRequest>& batch,
            const runner::RunnerOptions& options) const
{
    const prof::Stopwatch watch;
    BrokerMetrics m(cfg_.metrics);
    const std::size_t n = batch.size();
    std::vector<std::optional<runner::RunResult>> prefilled(n);

    // Resume prefill, identity-validated like the in-process runner.
    if (!options.resumePath.empty() &&
        journal::fileExists(options.resumePath)) {
        for (auto& r : runner::loadJournal(options.resumePath)) {
            fatalIf(r.index >= n, ErrorCode::Config,
                    "resume journal " + options.resumePath +
                        " run index " + std::to_string(r.index) +
                        " exceeds the batch size");
            runner::RunResult expect;
            stampIdentity(batch[r.index], r.index, expect);
            fatalIf(r.benchmark != expect.benchmark ||
                        r.policy != expect.policy ||
                        r.label != expect.label ||
                        r.multiCore != expect.multiCore,
                    ErrorCode::Config,
                    "resume journal " + options.resumePath +
                        " entry " + std::to_string(r.index) + " (" +
                        r.benchmark + "/" + r.policy +
                        ") does not match the request at that index");
            prefilled[r.index] = std::move(r);
        }
    }

    // Wire-encode the remaining work; the batch fingerprint binds the
    // queue file to exactly this job set.
    std::map<std::uint64_t, std::string> reqJson;
    std::string fp_text =
        "qschema" + std::to_string(kWireSchemaVersion);
    for (std::size_t i = 0; i < n; ++i) {
        if (prefilled[i])
            continue;
        reqJson.emplace(i, requestJson(batch[i]));
    }
    for (const auto& [id, j] : reqJson)
        fp_text += "\n" + std::to_string(id) + " " + j;
    WorkQueue queue(cfg_.queuePath,
                    hex8(Crc32::of(fp_text.data(), fp_text.size())));
    for (const auto& [id, j] : reqJson)
        queue.ensureEnqueued(id, j);

    // Span context: derived ids, never random (obs/span.hpp). The
    // wire carries them whether or not a collector is listening; the
    // batch sequence keeps re-run generations (same job-id space) on
    // distinct spans.
    obs::FleetCollector* const col = cfg_.collector;
    const std::uint64_t batch_seq =
        col ? col->batchStarted(fp_text) : 0;
    const std::uint64_t trace_id =
        col ? col->traceId() : obs::deriveTraceId(fp_text);
    const auto labelOf = [&](std::uint64_t id) {
        const auto& req = batch[id];
        return req.label.empty() ? mixName(req.sources) : req.label;
    };

    std::unique_ptr<runner::CheckpointJournal> journal;
    if (!options.journalPath.empty())
        journal = std::make_unique<runner::CheckpointJournal>(
            options.journalPath);

    // Backoff deadlines (scheduling only — never part of any result).
    std::map<std::uint64_t, Clock::time_point> not_before;
    std::uint64_t leases_granted = 0;
    std::uint64_t completions = 0;
    unsigned restarts = 0;

    const auto spawnWorker = [&]() {
        std::vector<std::string> args = {
            "--heartbeat-ms", std::to_string(cfg_.heartbeatMs)};
        if (col)
            args.emplace_back("--ship-obs");
        if (options.timeoutSeconds > 0.0) {
            args.emplace_back("--timeout");
            args.emplace_back(
                json::formatDouble(options.timeoutSeconds));
        }
        args.insert(args.end(), cfg_.workerArgs.begin(),
                    cfg_.workerArgs.end());
        return proc::Child::spawn(cfg_.workerBin, args);
    };

    // Record one finished result: checkpoint journal first, then the
    // queue — so a Done job is always already journaled, whatever
    // instant the broker dies at.
    const auto recordCompletion = [&](std::uint64_t id,
                                      const runner::RunResult& r,
                                      const std::string& result_json) {
        if (journal)
            journal->append(r);
        queue.complete(id, result_json);
        ++completions;
        fatalIf(cfg_.chaosAbortAfterCompletions != 0 &&
                    completions == cfg_.chaosAbortAfterCompletions,
                ErrorCode::Internal,
                "chaos-induced broker crash after " +
                    std::to_string(completions) +
                    " completion(s) (test hook)");
    };

    // A failed attempt either requeues (budget left) with exponential
    // backoff, or completes the job with a synthesized failed-typed
    // result carrying in-process-identical identity fields.
    const auto failAttempt = [&](unsigned slot, std::uint64_t id,
                                 ErrorCode code,
                                 const std::string& reason,
                                 const std::string& detail) {
        const unsigned attempts = queue.job(id).attempts;
        if (attempts < cfg_.maxAttempts) {
            if (m.requeued)
                m.requeued->add();
            if (col)
                col->requeued(slot);
            queue.requeue(id, reason, code);
            const double delay =
                cfg_.backoffSeconds *
                static_cast<double>(
                    1ull << std::min(attempts - 1, 20u));
            not_before[id] =
                Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(delay));
            return;
        }
        if (m.requeueExhausted)
            m.requeueExhausted->add();
        if (col)
            col->requeueExhausted(slot);
        runner::RunResult out;
        stampIdentity(batch[id], id, out);
        out.error = "job failed after " + std::to_string(attempts) +
                    " attempt(s): " + detail;
        out.errorCode = code;
        out.attempts = attempts;
        recordCompletion(id, out, runner::resultJson(out));
    };

    std::vector<Slot> slots(cfg_.workers);
    for (unsigned i = 0; i < cfg_.workers; ++i)
        slots[i].index = i;
    const auto workerDied = [&](Slot& s, ErrorCode code,
                                const std::string& reason,
                                const std::string& detail) {
        s.child.kill(SIGKILL);
        const auto status = s.child.waitReap();
        s.alive = false;
        s.ready = false;
        if (s.busy) {
            s.busy = false;
            // Whatever killed the holder, the *span* ends because its
            // lease was revoked; the reason annotation keeps the
            // worker-exit vs heartbeat-timeout distinction.
            if (col)
                col->spanClosed(s.index, s.spanId, "lease_expired",
                                reason);
            failAttempt(s.index, s.jobId, code, reason,
                        detail + " (" + status.toString() + ")");
        }
        if (restarts < cfg_.workerRestartBudget) {
            ++restarts;
            if (m.workerRestarts)
                m.workerRestarts->add();
            s.child = spawnWorker();
            s.alive = true;
            s.lastBeat = Clock::now();
            if (col)
                col->workerRestarted(
                    s.index,
                    static_cast<std::uint64_t>(s.child.pid()));
        }
    };

    if (!queue.allDone()) {
        for (auto& s : slots) {
            s.child = spawnWorker();
            s.alive = true;
            s.lastBeat = Clock::now();
            if (col)
                col->workerStarted(
                    s.index,
                    static_cast<std::uint64_t>(s.child.pid()));
        }
    }

    while (!queue.allDone()) {
        const auto now = Clock::now();

        // 1) Drain worker output; observe deaths.
        for (auto& s : slots) {
            if (!s.alive)
                continue;
            std::vector<std::string> lines;
            bool broken = false;
            try {
                lines = s.child.drainLines();
            } catch (const FatalError&) {
                broken = true; // injected/real read failure
            }
            for (const auto& line : lines) {
                if (const auto h = parseHello(line)) {
                    fatalIf(h->schema != kWireSchemaVersion,
                            ErrorCode::Config,
                            "worker pid " + std::to_string(h->pid) +
                                " speaks queue schema v" +
                                std::to_string(h->schema) +
                                " but this broker speaks v" +
                                std::to_string(kWireSchemaVersion));
                    s.ready = true;
                    s.lastBeat = now;
                } else if (const auto hb = parseHeartbeat(line)) {
                    if (s.busy && hb->jobId == s.jobId) {
                        if (m.heartbeatLatency)
                            m.heartbeatLatency->record(
                                millisBetween(s.lastBeat, now));
                        s.lastBeat = now;
                        if (col)
                            col->heartbeat(s.index, hb->spanId);
                    }
                } else if (const auto ob = parseObs(line)) {
                    // Observation-only by contract: a malformed
                    // payload is dropped, never allowed to fail the
                    // study. An OBS line is also liveness evidence —
                    // a large payload must not eat into the
                    // heartbeat deadline of the RESULT behind it.
                    if (s.busy && ob->jobId == s.jobId) {
                        s.lastBeat = now;
                        if (col) {
                            try {
                                col->workerObs(
                                    s.index, ob->spanId,
                                    obs::workerObsFromJson(
                                        ob->json,
                                        "OBS payload for job " +
                                            std::to_string(
                                                ob->jobId)));
                            } catch (const FatalError&) {
                            }
                        }
                    }
                } else if (const auto res = parseResult(line)) {
                    fatalIf(!s.busy || res->jobId != s.jobId,
                            ErrorCode::CorruptInput,
                            "worker sent a result for job " +
                                std::to_string(res->jobId) +
                                " which it does not hold");
                    const auto parsed =
                        runner::resultFromJson(res->json);
                    fatalIf(!parsed, ErrorCode::CorruptInput,
                            "worker result for job " +
                                std::to_string(res->jobId) +
                                " does not parse");
                    s.busy = false;
                    s.lastBeat = now;
                    const bool retryable =
                        !parsed->ok() && isRetryable(parsed->errorCode);
                    if (col)
                        col->spanClosed(
                            s.index, res->spanId,
                            parsed->ok()
                                ? "ok"
                                : (retryable ? "retryable_error"
                                             : "error"),
                            parsed->ok()
                                ? ""
                                : errorCodeName(parsed->errorCode));
                    if (retryable) {
                        // failAttempt requeues while budget remains,
                        // else synthesizes the exhaustion failure.
                        failAttempt(s.index, res->jobId,
                                    parsed->errorCode,
                                    "retryable-error",
                                    parsed->error);
                    } else {
                        recordCompletion(res->jobId, *parsed,
                                         res->json);
                    }
                } else {
                    // Torn/garbled output — a worker dying mid-write.
                    broken = true;
                }
            }
            if (s.alive &&
                (broken || s.child.eof() || s.child.tryReap()))
                workerDied(s, ErrorCode::Resource, "worker-exit",
                           "worker process died or broke protocol");
        }

        // 2) Heartbeat deadlines: silent-too-long workers lose their
        // lease (and never-HELLO workers their slot).
        for (auto& s : slots) {
            if (!s.alive)
                continue;
            if (millisBetween(s.lastBeat, now) <=
                static_cast<std::int64_t>(cfg_.heartbeatTimeoutMs))
                continue;
            if (s.busy) {
                if (m.leaseExpired)
                    m.leaseExpired->add();
                if (col)
                    col->leaseExpired(s.index);
                workerDied(
                    s, ErrorCode::Timeout, "heartbeat-timeout",
                    "lease expired: no heartbeat for " +
                        std::to_string(cfg_.heartbeatTimeoutMs) +
                        "ms");
            } else if (!s.ready) {
                workerDied(s, ErrorCode::Resource, "worker-exit",
                           "worker never said HELLO");
            }
        }

        // 3) Dispatch pending work to idle workers, lowest id first,
        // honoring backoff deadlines.
        for (auto& s : slots) {
            if (!s.alive || !s.ready || s.busy)
                continue;
            std::optional<std::uint64_t> pick;
            for (const auto id : queue.pendingIds()) {
                const auto it = not_before.find(id);
                if (it != not_before.end() && now < it->second)
                    continue;
                pick = id;
                break;
            }
            if (!pick)
                break;
            queue.lease(*pick);
            ++leases_granted;
            const unsigned attempt = queue.job(*pick).attempts;
            s.busy = true;
            s.jobId = *pick;
            s.spanId = obs::deriveSpanId(trace_id, batch_seq, *pick,
                                         attempt);
            s.lastBeat = Clock::now();
            if (col)
                col->leaseGranted(s.index, *pick, s.spanId, attempt,
                                  labelOf(*pick));
            try {
                s.child.writeLine(
                    jobLine(*pick, {trace_id, s.spanId},
                            queue.job(*pick).requestJson));
            } catch (const FatalError&) {
                workerDied(s, ErrorCode::Resource, "worker-exit",
                           "worker pipe broke during dispatch");
                continue;
            }
            // Chaos: a scripted external SIGKILL right after the
            // Nth lease, as the CI smoke job does with pkill.
            if (cfg_.killWorkerAfterLeases != 0 &&
                leases_granted == cfg_.killWorkerAfterLeases)
                s.child.kill(SIGKILL);
        }

        if (queue.allDone())
            break;
        bool any_alive = false;
        for (const auto& s : slots)
            any_alive = any_alive || s.alive;
        fatalIf(!any_alive, ErrorCode::Resource,
                "all workers are dead and the restart budget is "
                "exhausted with work remaining");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Polite shutdown; Child's destructor covers the impolite cases.
    for (auto& s : slots) {
        if (!s.alive)
            continue;
        try {
            s.child.writeLine(kShutdownLine);
        } catch (const FatalError&) {
        }
        s.child.closeStdin();
        s.child.waitReap();
    }

    runner::RunSet set;
    set.jobs = cfg_.workers;
    set.results.reserve(n);
    std::uint64_t done = 0, failed = 0, skipped = 0, retries = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (prefilled[i]) {
            ++skipped;
            set.results.push_back(std::move(*prefilled[i]));
            continue;
        }
        const auto parsed =
            runner::resultFromJson(queue.job(i).resultJson);
        fatalIf(!parsed, ErrorCode::Internal,
                "queue journal holds an unparsable result for job " +
                    std::to_string(i));
        parsed->ok() ? ++done : ++failed;
        const unsigned attempts = queue.job(i).attempts;
        if (attempts > 1)
            retries += attempts - 1;
        set.results.push_back(std::move(*parsed));
        set.results.back().index = i;
    }
    // Mirror the in-process runner's batch counters so a broker
    // --metrics-out covers runner.* and queue.* alike.
    if (cfg_.metrics) {
        cfg_.metrics->counter("runner.completed").add(done);
        cfg_.metrics->counter("runner.failed").add(failed);
        cfg_.metrics->counter("runner.skipped").add(skipped);
        cfg_.metrics->counter("runner.retries").add(retries);
    }
    set.wallSeconds = watch.seconds();
    return set;
}

} // namespace mrp::queue
