/**
 * @file
 * Serialization and line protocol of the distributed work queue.
 *
 * A RunRequest crosses the process boundary as one JSON document:
 * trace sources via TraceSpec::toJson (pure identity, no bytes),
 * the policy by name or as an MpppbConfig payload, and the full
 * driver configuration field by field. The encoding is deterministic
 * and total for everything a queue can carry; what it cannot carry is
 * refused with ErrorCode::Config at enqueue time, never silently
 * dropped:
 *  - Borrowed trace specs (point into process memory),
 *  - factory policies (closures don't serialize; use
 *    PolicySpec::mpppb or a registry name),
 *  - telemetry-enabled configs (RunTelemetry is a process-local
 *    object graph with no wire form).
 * OpenOptions are delivery knobs, not identity, and are deliberately
 * not serialized — each worker opens sources with its own defaults,
 * which is byte-neutral by the TraceSource contract.
 *
 * Results travel as the checkpoint journal's resultJson bytes
 * (runner/checkpoint.hpp), so a result relayed by a worker is
 * byte-identical to one produced in-process — the foundation of the
 * any-worker-count determinism contract.
 *
 * Broker <-> worker wire protocol, one LF-terminated line per message
 * over the worker's stdin/stdout; JSON payloads are CRC-framed with
 * the journal idiom (journal::frameLine minus the newline). Since
 * schema v2 every line carries span context (obs/span.hpp): a JOB
 * line names the study trace and the lease span as 16-digit lowercase
 * hex, and every worker reply echoes the span so the broker can
 * correlate events to leases across requeues:
 *
 *   worker -> broker:  HELLO <pid> <schema>
 *                      HB <jobId> <span16> <seq>
 *                      OBS <jobId> <span16> <crc8> <obsJson>
 *                      RESULT <jobId> <span16> <crc8> <resultJson>
 *   broker -> worker:  JOB <jobId> <trace16> <span16> <crc8> <requestJson>
 *                      SHUTDOWN
 *
 * OBS is optional (workers ship it only when told to, directly before
 * the RESULT of the same lease) and strictly observational: a broker
 * may ignore or drop it without affecting any result byte.
 */

#ifndef MRP_QUEUE_WIRE_HPP
#define MRP_QUEUE_WIRE_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "obs/span.hpp"
#include "runner/run_request.hpp"
#include "util/journal.hpp"
#include "util/json_reader.hpp"

namespace mrp::queue {

/** Schema carried in HELLO and in queue-journal headers. */
inline constexpr unsigned kWireSchemaVersion =
    journal::kQueueSchemaVersion;

/**
 * Serialize @p request as one deterministic JSON document. Throws
 * FatalError(ErrorCode::Config) for requests a queue cannot carry
 * (see file comment).
 */
std::string requestJson(const runner::RunRequest& request);

/** Inverse of requestJson. @p what names the document for errors;
 * malformed documents throw FatalError(ErrorCode::CorruptInput). */
runner::RunRequest requestFromJson(const json::Value& v,
                                   const std::string& what);

/** Convenience: parse text then requestFromJson. */
runner::RunRequest requestFromJson(const std::string& text,
                                   const std::string& what);

// --- protocol lines (no trailing newline) ---------------------------

struct HelloMsg
{
    std::uint64_t pid = 0;
    unsigned schema = 0;
};

struct HeartbeatMsg
{
    std::uint64_t jobId = 0;
    std::uint64_t spanId = 0;
    std::uint64_t seq = 0;
};

/** A JOB, RESULT, or OBS line: id and span context plus the
 * CRC-verified JSON payload. traceId is only set for JOB lines
 * (replies echo just the span). */
struct FramedMsg
{
    std::uint64_t jobId = 0;
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    std::string json;
};

std::string helloLine(std::uint64_t pid);
std::string heartbeatLine(std::uint64_t job_id, std::uint64_t span_id,
                          std::uint64_t seq);
std::string jobLine(std::uint64_t job_id, const obs::SpanContext& ctx,
                    const std::string& request_json);
std::string resultLine(std::uint64_t job_id, std::uint64_t span_id,
                       const std::string& result_json);
std::string obsLine(std::uint64_t job_id, std::uint64_t span_id,
                    const std::string& obs_json);
inline constexpr const char* kShutdownLine = "SHUTDOWN";

/** Each parser returns nullopt unless the line is a well-formed
 * message of its kind (including payload checksum for framed
 * messages). */
std::optional<HelloMsg> parseHello(const std::string& line);
std::optional<HeartbeatMsg> parseHeartbeat(const std::string& line);
std::optional<FramedMsg> parseJob(const std::string& line);
std::optional<FramedMsg> parseResult(const std::string& line);
std::optional<FramedMsg> parseObs(const std::string& line);

} // namespace mrp::queue

#endif // MRP_QUEUE_WIRE_HPP
