/**
 * @file
 * Durable lease-based work queue — the crash-safe heart of the
 * distributed sweep service.
 *
 * The queue is a CRC-framed JSONL journal (util/journal.hpp idiom:
 * one fsync'd write per record, torn tail tolerated and healed) whose
 * records replay to the full lease state machine:
 *
 *   header   {"type":"header","schema":S,"fingerprint":F}
 *   enqueue  {"type":"enqueue","id":N,"request":{...wire...}}
 *   lease    {"type":"lease","id":N,"attempt":K}
 *   requeue  {"type":"requeue","id":N,"reason":R,"code":C}
 *   complete {"type":"complete","id":N,"result":{...checkpoint...}}
 *
 * State machine per job: Pending --lease--> Leased --complete--> Done,
 * with Leased --requeue--> Pending (worker death, heartbeat expiry,
 * retryable error). Replay applies records in order; a job left
 * Leased at the end of the journal was in flight when the broker
 * died and is returned to Pending — the lease is the unit of loss.
 *
 * Open semantics:
 *  - missing/empty file           -> fresh queue, header written
 *  - header schema != ours        -> FatalError(Config), refused
 *  - no header record at all      -> FatalError(Config): the file is
 *    not a queue journal (e.g. a pre-queue checkpoint journal) and
 *    must not be misread
 *  - header fingerprint mismatch  -> a different batch's queue; the
 *    file is truncated and restarted fresh (queue files are per-batch
 *    scratch, unlike study journals, which refuse instead)
 *
 * Scheduling policy (which pending job to lease next, backoff
 * deadlines) lives in the Broker; this class owns durability and
 * state transitions only. All methods are single-threaded by design —
 * the broker's poll loop is the sole caller.
 */

#ifndef MRP_QUEUE_WORK_QUEUE_HPP
#define MRP_QUEUE_WORK_QUEUE_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/journal.hpp"
#include "util/logging.hpp"

namespace mrp::queue {

enum class JobState : std::uint8_t { Pending, Leased, Done };

struct QueueJob
{
    std::uint64_t id = 0;
    /** Wire-form request (queue/wire.hpp), exactly as journaled. */
    std::string requestJson;
    JobState state = JobState::Pending;
    /** Leases granted so far (replayed from lease records). */
    unsigned attempts = 0;
    /** Checkpoint resultJson bytes; set iff state == Done. */
    std::string resultJson;
};

class WorkQueue
{
  public:
    /**
     * Open (replaying an existing journal) or create the queue at
     * @p path. @p fingerprint identifies the batch (see file comment
     * for the mismatch semantics). Fault sites: "queue.journal.open",
     * "queue.journal.write".
     */
    WorkQueue(const std::string& path,
              const std::string& fingerprint);

    /**
     * Idempotent enqueue: journals the job unless the replayed queue
     * already holds @p id, in which case the request must match
     * byte-for-byte (FatalError(Config) otherwise — the fingerprint
     * should have caught a different batch).
     */
    void ensureEnqueued(std::uint64_t id,
                        const std::string& request_json);

    /** Pending -> Leased; journals the lease and returns the attempt
     * number (1 = first execution). */
    unsigned lease(std::uint64_t id);

    /** Leased -> Pending after a failed attempt; journals reason and
     * code. The attempt count is NOT reset. */
    void requeue(std::uint64_t id, const std::string& reason,
                 ErrorCode code);

    /** Leased (or Pending, for broker-synthesized failures) -> Done;
     * journals the checkpoint-form result bytes. */
    void complete(std::uint64_t id, const std::string& result_json);

    const QueueJob& job(std::uint64_t id) const;

    /** Pending job ids in ascending order. */
    std::vector<std::uint64_t> pendingIds() const;

    std::size_t size() const { return jobs_.size(); }
    std::size_t doneCount() const;
    bool allDone() const;

    const std::string& path() const { return file_->path(); }

  private:
    QueueJob& mutableJob(std::uint64_t id);
    void replay(const std::vector<std::string>& lines);

    std::map<std::uint64_t, QueueJob> jobs_;
    /** Opened after replay validation (which may truncate the file). */
    std::unique_ptr<journal::AppendFile> file_;
};

} // namespace mrp::queue

#endif // MRP_QUEUE_WORK_QUEUE_HPP
