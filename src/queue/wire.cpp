#include "queue/wire.hpp"

#include <cstdlib>

#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace mrp::queue {

namespace {

using json::Value;

// --- require helpers over the generic JSON tree ---------------------

std::uint64_t
reqU64(const Value& v, std::string_view key, const std::string& what)
{
    return v.require(key, Value::Type::Number, what).asU64();
}

int
reqInt(const Value& v, std::string_view key, const std::string& what)
{
    return static_cast<int>(
        v.require(key, Value::Type::Number, what).number);
}

unsigned
reqUnsigned(const Value& v, std::string_view key,
            const std::string& what)
{
    return static_cast<unsigned>(reqU64(v, key, what));
}

double
reqDouble(const Value& v, std::string_view key,
          const std::string& what)
{
    return v.require(key, Value::Type::Number, what).number;
}

bool
reqBool(const Value& v, std::string_view key, const std::string& what)
{
    return v.require(key, Value::Type::Bool, what).boolean;
}

const std::string&
reqStr(const Value& v, std::string_view key, const std::string& what)
{
    return v.require(key, Value::Type::String, what).string;
}

const Value&
reqObj(const Value& v, std::string_view key, const std::string& what)
{
    return v.require(key, Value::Type::Object, what);
}

const Value&
reqArr(const Value& v, std::string_view key, const std::string& what)
{
    return v.require(key, Value::Type::Array, what);
}

// --- MpppbConfig <-> JSON -------------------------------------------

std::string
mpppbJson(const core::MpppbConfig& c)
{
    std::string out = "{" + json::key("features") + "[";
    for (std::size_t i = 0; i < c.predictor.features.size(); ++i) {
        if (i)
            out += ", ";
        out += json::str(c.predictor.features[i].toString());
    }
    out += "], " + json::key("sampledSetsPerCore") +
           std::to_string(c.predictor.sampledSetsPerCore);
    out += ", " + json::key("samplerAssoc") +
           std::to_string(c.predictor.samplerAssoc);
    out += ", " + json::key("weightBits") +
           std::to_string(c.predictor.weightBits);
    out += ", " + json::key("confidenceClamp") +
           std::to_string(c.predictor.confidenceClamp);
    out += ", " + json::key("trainingThreshold") +
           std::to_string(c.predictor.trainingThreshold);
    out += ", " + json::key("substrate") +
           json::str(c.substrate == core::Substrate::Mdpp ? "mdpp"
                                                          : "srrip");
    out += ", " + json::key("tauBypass") +
           std::to_string(c.thresholds.tauBypass);
    out += ", " + json::key("tau") + "[" +
           std::to_string(c.thresholds.tau[0]) + ", " +
           std::to_string(c.thresholds.tau[1]) + ", " +
           std::to_string(c.thresholds.tau[2]) + "]";
    out += ", " + json::key("pi") + "[" +
           std::to_string(c.thresholds.pi[0]) + ", " +
           std::to_string(c.thresholds.pi[1]) + ", " +
           std::to_string(c.thresholds.pi[2]) + "]";
    out += ", " + json::key("tauNoPromote") +
           std::to_string(c.thresholds.tauNoPromote);
    out += ", " + json::key("bypassEnabled") +
           (c.bypassEnabled ? "true" : "false");
    out += ", " + json::key("dynamicBypass") +
           (c.dynamicBypass ? "true" : "false");
    out += ", " + json::key("duelingPeriod") +
           std::to_string(c.duelingPeriod);
    out += ", " + json::key("pselBits") + std::to_string(c.pselBits);
    out += ", " + json::key("mdppInsertPos") +
           std::to_string(c.mdpp.insertPos);
    out += ", " + json::key("mdppPromotePos") +
           std::to_string(c.mdpp.promotePos);
    out += ", " + json::key("srripBits") +
           std::to_string(c.srrip.bits);
    out += ", " + json::key("srripInsertRrpv") +
           std::to_string(c.srrip.insertRrpv);
    out += ", " + json::key("srripHitRrpv") +
           std::to_string(c.srrip.hitRrpv) + "}";
    return out;
}

core::MpppbConfig
mpppbFromJson(const Value& v, const std::string& what)
{
    core::MpppbConfig c;
    c.predictor.features.clear();
    for (const auto& f : reqArr(v, "features", what).array) {
        fatalIf(!f.isString(), ErrorCode::CorruptInput,
                what + ": feature entries must be strings");
        c.predictor.features.push_back(
            core::FeatureSpec::parse(f.string));
    }
    c.predictor.sampledSetsPerCore = static_cast<std::uint32_t>(
        reqU64(v, "sampledSetsPerCore", what));
    c.predictor.samplerAssoc =
        static_cast<std::uint32_t>(reqU64(v, "samplerAssoc", what));
    c.predictor.weightBits = reqUnsigned(v, "weightBits", what);
    c.predictor.confidenceClamp = reqInt(v, "confidenceClamp", what);
    c.predictor.trainingThreshold =
        reqInt(v, "trainingThreshold", what);
    const std::string& sub = reqStr(v, "substrate", what);
    if (sub == "mdpp")
        c.substrate = core::Substrate::Mdpp;
    else if (sub == "srrip")
        c.substrate = core::Substrate::Srrip;
    else
        fatal(ErrorCode::CorruptInput,
              what + ": unknown substrate \"" + sub + "\"");
    c.thresholds.tauBypass = reqInt(v, "tauBypass", what);
    const auto& tau = reqArr(v, "tau", what).array;
    const auto& pi = reqArr(v, "pi", what).array;
    fatalIf(tau.size() != 3 || pi.size() != 3,
            ErrorCode::CorruptInput,
            what + ": tau and pi must each have 3 entries");
    for (std::size_t i = 0; i < 3; ++i) {
        c.thresholds.tau[i] = static_cast<int>(tau[i].number);
        c.thresholds.pi[i] =
            static_cast<std::uint32_t>(pi[i].number);
    }
    c.thresholds.tauNoPromote = reqInt(v, "tauNoPromote", what);
    c.bypassEnabled = reqBool(v, "bypassEnabled", what);
    c.dynamicBypass = reqBool(v, "dynamicBypass", what);
    c.duelingPeriod = reqUnsigned(v, "duelingPeriod", what);
    c.pselBits = reqUnsigned(v, "pselBits", what);
    c.mdpp.insertPos =
        static_cast<std::uint32_t>(reqU64(v, "mdppInsertPos", what));
    c.mdpp.promotePos =
        static_cast<std::uint32_t>(reqU64(v, "mdppPromotePos", what));
    c.srrip.bits = reqUnsigned(v, "srripBits", what);
    c.srrip.insertRrpv = reqUnsigned(v, "srripInsertRrpv", what);
    c.srrip.hitRrpv = reqUnsigned(v, "srripHitRrpv", what);
    return c;
}

// --- driver config <-> JSON -----------------------------------------

std::string
hierarchyJson(const cache::HierarchyConfig& h)
{
    std::string out =
        "{" + json::key("cores") + std::to_string(h.cores);
    out += ", " + json::key("l1Bytes") + std::to_string(h.l1Bytes);
    out += ", " + json::key("l1Ways") + std::to_string(h.l1Ways);
    out += ", " + json::key("l2Bytes") + std::to_string(h.l2Bytes);
    out += ", " + json::key("l2Ways") + std::to_string(h.l2Ways);
    out += ", " + json::key("llcBytes") + std::to_string(h.llcBytes);
    out += ", " + json::key("llcWays") + std::to_string(h.llcWays);
    out +=
        ", " + json::key("l1Latency") + std::to_string(h.l1Latency);
    out +=
        ", " + json::key("l2Latency") + std::to_string(h.l2Latency);
    out += ", " + json::key("llcLatency") +
           std::to_string(h.llcLatency);
    out += ", " + json::key("memLatency") +
           std::to_string(h.memLatency);
    out += ", " + json::key("prefetchEnabled") +
           (h.prefetchEnabled ? "true" : "false");
    out += ", " + json::key("prefetcher") + "{" +
           json::key("streams") +
           std::to_string(h.prefetcher.streams);
    out += ", " + json::key("degree") +
           std::to_string(h.prefetcher.degree);
    out += ", " + json::key("distance") +
           std::to_string(h.prefetcher.distance);
    out += ", " + json::key("window") +
           std::to_string(h.prefetcher.window) + "}}";
    return out;
}

cache::HierarchyConfig
hierarchyFromJson(const Value& v, const std::string& what)
{
    cache::HierarchyConfig h;
    h.cores = reqUnsigned(v, "cores", what);
    h.l1Bytes = reqU64(v, "l1Bytes", what);
    h.l1Ways = static_cast<std::uint32_t>(reqU64(v, "l1Ways", what));
    h.l2Bytes = reqU64(v, "l2Bytes", what);
    h.l2Ways = static_cast<std::uint32_t>(reqU64(v, "l2Ways", what));
    h.llcBytes = reqU64(v, "llcBytes", what);
    h.llcWays =
        static_cast<std::uint32_t>(reqU64(v, "llcWays", what));
    h.l1Latency = reqU64(v, "l1Latency", what);
    h.l2Latency = reqU64(v, "l2Latency", what);
    h.llcLatency = reqU64(v, "llcLatency", what);
    h.memLatency = reqU64(v, "memLatency", what);
    h.prefetchEnabled = reqBool(v, "prefetchEnabled", what);
    const auto& p = reqObj(v, "prefetcher", what);
    h.prefetcher.streams = reqUnsigned(p, "streams", what);
    h.prefetcher.degree = reqUnsigned(p, "degree", what);
    h.prefetcher.distance = reqUnsigned(p, "distance", what);
    h.prefetcher.window = reqUnsigned(p, "window", what);
    return h;
}

std::string
driverJson(const sim::DriverConfig& d)
{
    std::string out =
        "{" + json::key("hierarchy") + hierarchyJson(d.hierarchy);
    out += ", " + json::key("warmupFraction") +
           json::formatDouble(d.warmupFraction);
    out += ", " + json::key("warmupInstructions") +
           std::to_string(d.warmupInstructions);
    out += ", " + json::key("seed") + std::to_string(d.seed);
    return out;
}

void
driverFromJson(const Value& v, const std::string& what,
               sim::DriverConfig& d)
{
    d.hierarchy = hierarchyFromJson(reqObj(v, "hierarchy", what), what);
    d.warmupFraction = reqDouble(v, "warmupFraction", what);
    d.warmupInstructions = reqU64(v, "warmupInstructions", what);
    d.seed = reqU64(v, "seed", what);
}

std::string
tenancyJson(const tenant::TenancyConfig& t)
{
    std::string out = "{" + json::key("tenants") + "[";
    for (std::size_t i = 0; i < t.tenants.size(); ++i) {
        if (i)
            out += ", ";
        out += "{" + json::key("ways") +
               std::to_string(t.tenants[i].ways) + ", " +
               json::key("sloMpki") +
               json::formatDouble(t.tenants[i].sloMpki) + "}";
    }
    out += "], " + json::key("qos") + "{";
    out += json::key("enabled") +
           std::string(t.qos.enabled ? "true" : "false");
    out += ", " + json::key("epochInstructions") +
           std::to_string(t.qos.epochInstructions);
    out += ", " + json::key("breachEpochs") +
           std::to_string(t.qos.breachEpochs);
    out += ", " + json::key("calmEpochs") +
           std::to_string(t.qos.calmEpochs);
    out += ", " + json::key("hysteresisFrac") +
           json::formatDouble(t.qos.hysteresisFrac);
    out += ", " + json::key("minWays") +
           std::to_string(t.qos.minWays);
    out += "}}";
    return out;
}

tenant::TenancyConfig
tenancyFromJson(const Value& v, const std::string& what)
{
    tenant::TenancyConfig t;
    for (const auto& e : reqArr(v, "tenants", what).array) {
        tenant::TenantConfig tc;
        tc.ways = reqUnsigned(e, "ways", what);
        tc.sloMpki = reqDouble(e, "sloMpki", what);
        t.tenants.push_back(tc);
    }
    const auto& q = reqObj(v, "qos", what);
    t.qos.enabled = reqBool(q, "enabled", what);
    t.qos.epochInstructions = reqU64(q, "epochInstructions", what);
    t.qos.breachEpochs = reqUnsigned(q, "breachEpochs", what);
    t.qos.calmEpochs = reqUnsigned(q, "calmEpochs", what);
    t.qos.hysteresisFrac = reqDouble(q, "hysteresisFrac", what);
    t.qos.minWays = reqUnsigned(q, "minWays", what);
    return t;
}

// --- line-protocol helpers ------------------------------------------

/** Full-string unsigned parse; nullopt on anything else. */
std::optional<std::uint64_t>
parseU64Token(const std::string& s)
{
    if (s.empty())
        return std::nullopt;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size())
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

/**
 * Strip "<verb> <id> " plus @p hex_ids space-separated hex16 tokens
 * (two for JOB: trace then span; one for RESULT/OBS: span) and
 * checksum-verify the rest.
 */
std::optional<FramedMsg>
parseFramed(const std::string& line, const std::string& verb,
            unsigned hex_ids)
{
    const std::string prefix = verb + " ";
    if (line.rfind(prefix, 0) != 0)
        return std::nullopt;
    const std::size_t id_end = line.find(' ', prefix.size());
    if (id_end == std::string::npos)
        return std::nullopt;
    const auto id =
        parseU64Token(line.substr(prefix.size(),
                                  id_end - prefix.size()));
    if (!id)
        return std::nullopt;
    FramedMsg msg;
    msg.jobId = *id;
    std::size_t pos = id_end + 1;
    std::uint64_t ids[2] = {0, 0};
    for (unsigned i = 0; i < hex_ids; ++i) {
        const std::size_t end = line.find(' ', pos);
        if (end == std::string::npos)
            return std::nullopt;
        const auto v = obs::parseHex16(
            std::string_view(line).substr(pos, end - pos));
        if (!v)
            return std::nullopt;
        ids[i] = *v;
        pos = end + 1;
    }
    if (hex_ids == 2) {
        msg.traceId = ids[0];
        msg.spanId = ids[1];
    } else {
        msg.spanId = ids[0];
    }
    auto body = journal::unframeLine(line.substr(pos));
    if (!body)
        return std::nullopt;
    msg.json = std::move(*body);
    return msg;
}

std::string
framedLine(const std::string& verb, std::uint64_t job_id,
           const std::string& hex_ids, const std::string& json)
{
    // A payload with a raw newline would silently shear into
    // unparsable line fragments on the pipe; fail the writer instead.
    fatalIf(json.find('\n') != std::string::npos, ErrorCode::Config,
            verb + " payload must be a single line");
    std::string framed = journal::frameLine(json);
    framed.pop_back(); // frameLine appends the journal newline
    return verb + " " + std::to_string(job_id) + " " + hex_ids + " " +
           framed;
}

} // namespace

std::string
requestJson(const runner::RunRequest& request)
{
    fatalIf(static_cast<bool>(request.policy.factory),
            ErrorCode::Config,
            "policy \"" + request.policy.name +
                "\" holds a factory closure and cannot cross a "
                "process boundary; use PolicySpec::mpppb or a "
                "registry name");
    const bool telemetry = std::visit(
        [](const auto& c) { return c.telemetry.enabled; },
        request.config);
    fatalIf(telemetry, ErrorCode::Config,
            "telemetry-enabled runs cannot be queued: RunTelemetry "
            "has no wire form (run them in-process)");

    std::string out = "{" + json::key("mode") +
                      json::str(request.isMultiCore() ? "multi"
                                                      : "single");
    out += ", " + json::key("label") + json::str(request.label);
    out += ", " + json::key("policy") + "{" + json::key("name") +
           json::str(request.policy.name);
    if (request.policy.mpppbConfig)
        out += ", " + json::key("mpppb") +
               mpppbJson(*request.policy.mpppbConfig);
    out += "}";
    out += ", " + json::key("sources") + "[";
    for (std::size_t i = 0; i < request.sources.size(); ++i) {
        if (i)
            out += ", ";
        out += request.sources[i].toJson();
    }
    out += "]";
    out += ", " + json::key("config");
    if (request.isMultiCore()) {
        const auto& c =
            std::get<sim::MultiCoreConfig>(request.config);
        out += driverJson(c) + ", " + json::key("measureCycles") +
               std::to_string(c.measureCycles);
        // Tenancy travels only when configured, so non-tenant job
        // payloads stay byte-identical to the previous schema.
        if (c.tenancy.configured())
            out += ", " + json::key("tenancy") +
                   tenancyJson(c.tenancy);
        out += "}";
    } else {
        out += driverJson(
                   std::get<sim::SingleCoreConfig>(request.config)) +
               "}";
    }
    out += "}";
    return out;
}

runner::RunRequest
requestFromJson(const json::Value& v, const std::string& what)
{
    fatalIf(!v.isObject(), ErrorCode::CorruptInput,
            what + ": request must be a JSON object");
    runner::RunRequest r;
    const std::string& mode = reqStr(v, "mode", what);
    fatalIf(mode != "single" && mode != "multi",
            ErrorCode::CorruptInput,
            what + ": unknown mode \"" + mode + "\"");
    r.label = reqStr(v, "label", what);

    const auto& pol = reqObj(v, "policy", what);
    const std::string& name = reqStr(pol, "name", what);
    if (const auto* m = pol.get("mpppb"))
        r.policy = runner::PolicySpec::mpppb(
            mpppbFromJson(*m, what + " policy"));
    else
        r.policy = runner::PolicySpec::byName(name);
    r.policy.name = name;

    const auto& srcs = reqArr(v, "sources", what).array;
    if (mode == "multi")
        fatalIf(srcs.size() < 2, ErrorCode::CorruptInput,
                what + ": multi request needs >= 2 sources, got " +
                    std::to_string(srcs.size()));
    else
        fatalIf(srcs.size() != 1, ErrorCode::CorruptInput,
                what + ": single request needs 1 source, got " +
                    std::to_string(srcs.size()));
    for (const auto& s : srcs)
        r.sources.push_back(trace::TraceSpec::fromJson(s, what));

    const auto& cfg = reqObj(v, "config", what);
    if (mode == "multi") {
        sim::MultiCoreConfig c;
        driverFromJson(cfg, what, c);
        c.measureCycles = reqU64(cfg, "measureCycles", what);
        if (const auto* t = cfg.get("tenancy"))
            c.tenancy = tenancyFromJson(*t, what + " tenancy");
        r.config = std::move(c);
    } else {
        sim::SingleCoreConfig c;
        driverFromJson(cfg, what, c);
        r.config = c;
    }
    return r;
}

runner::RunRequest
requestFromJson(const std::string& text, const std::string& what)
{
    return requestFromJson(json::parseJson(text, what), what);
}

std::string
helloLine(std::uint64_t pid)
{
    return "HELLO " + std::to_string(pid) + " " +
           std::to_string(kWireSchemaVersion);
}

std::string
heartbeatLine(std::uint64_t job_id, std::uint64_t span_id,
              std::uint64_t seq)
{
    return "HB " + std::to_string(job_id) + " " +
           obs::hex16(span_id) + " " + std::to_string(seq);
}

std::string
jobLine(std::uint64_t job_id, const obs::SpanContext& ctx,
        const std::string& request_json)
{
    return framedLine("JOB", job_id,
                      obs::hex16(ctx.traceId) + " " +
                          obs::hex16(ctx.spanId),
                      request_json);
}

std::string
resultLine(std::uint64_t job_id, std::uint64_t span_id,
           const std::string& result_json)
{
    return framedLine("RESULT", job_id, obs::hex16(span_id),
                      result_json);
}

std::string
obsLine(std::uint64_t job_id, std::uint64_t span_id,
        const std::string& obs_json)
{
    return framedLine("OBS", job_id, obs::hex16(span_id), obs_json);
}

std::optional<HelloMsg>
parseHello(const std::string& line)
{
    if (line.rfind("HELLO ", 0) != 0)
        return std::nullopt;
    const std::size_t sep = line.find(' ', 6);
    if (sep == std::string::npos)
        return std::nullopt;
    const auto pid = parseU64Token(line.substr(6, sep - 6));
    const auto schema = parseU64Token(line.substr(sep + 1));
    if (!pid || !schema)
        return std::nullopt;
    return HelloMsg{*pid, static_cast<unsigned>(*schema)};
}

std::optional<HeartbeatMsg>
parseHeartbeat(const std::string& line)
{
    if (line.rfind("HB ", 0) != 0)
        return std::nullopt;
    const std::size_t span_sep = line.find(' ', 3);
    if (span_sep == std::string::npos)
        return std::nullopt;
    const std::size_t seq_sep = line.find(' ', span_sep + 1);
    if (seq_sep == std::string::npos)
        return std::nullopt;
    const auto id = parseU64Token(line.substr(3, span_sep - 3));
    const auto span = obs::parseHex16(
        std::string_view(line).substr(span_sep + 1,
                                      seq_sep - span_sep - 1));
    const auto seq = parseU64Token(line.substr(seq_sep + 1));
    if (!id || !span || !seq)
        return std::nullopt;
    return HeartbeatMsg{*id, *span, *seq};
}

std::optional<FramedMsg>
parseJob(const std::string& line)
{
    return parseFramed(line, "JOB", 2);
}

std::optional<FramedMsg>
parseResult(const std::string& line)
{
    return parseFramed(line, "RESULT", 1);
}

std::optional<FramedMsg>
parseObs(const std::string& line)
{
    return parseFramed(line, "OBS", 1);
}

} // namespace mrp::queue
