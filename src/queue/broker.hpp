/**
 * @file
 * The queue broker: a runner::Executor that executes a RunRequest
 * batch by leasing jobs from a durable WorkQueue to mrp_worker
 * processes over the wire protocol (queue/wire.hpp).
 *
 * Liveness is heartbeat-based: an executing worker emits HB lines
 * every BrokerConfig::heartbeatMs; a worker that dies (EOF/waitpid),
 * hangs (no heartbeat for heartbeatTimeoutMs), or returns a transient
 * (retryable) ErrorCode has its lease expired and the job requeued
 * with deterministic exponential backoff. A job that exhausts its
 * lease budget (maxAttempts) is completed with a synthesized
 * failed-typed RunResult — Timeout for heartbeat expiry, Resource for
 * worker death, the error's own code for a relayed failure — carrying
 * the same identity fields an in-process failure would.
 *
 * Determinism contract: simulation is deterministic and results are
 * keyed by job id (= batch index), so the assembled RunSet — and any
 * report derived from it — is byte-identical at every worker count,
 * through arbitrary worker kills, and across broker crash/resume
 * (the queue journal replays completed work; see WorkQueue).
 *
 * Telemetry (when BrokerConfig::metrics is set):
 *   queue.lease_expired         heartbeat deadlines missed
 *   queue.requeued              jobs returned to Pending
 *   queue.worker_restarts       workers respawned
 *   queue.requeue_exhausted     jobs failed after the lease budget
 *   queue.heartbeat_latency_ms  observed heartbeat intervals
 *
 * Fleet observability (when BrokerConfig::collector is set): every
 * batch opens a trace (obs/span.hpp), every lease becomes a span on
 * the wire, workers are asked to ship per-run OBS payloads, and the
 * collector records lease/heartbeat/close events plus every payload
 * — all strictly observation-only, so attaching a collector never
 * changes a result or report byte. The collector's per-worker queue.*
 * counters are bumped at exactly the same call sites as the registry
 * counters above, so their sums always match.
 */

#ifndef MRP_QUEUE_BROKER_HPP
#define MRP_QUEUE_BROKER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "obs/fleet_collector.hpp"
#include "runner/executor.hpp"
#include "runner/experiment_runner.hpp"
#include "telemetry/metrics.hpp"

namespace mrp::queue {

struct BrokerConfig
{
    /** Path of the mrp_worker binary to spawn. */
    std::string workerBin;
    unsigned workers = 2;
    /** Worker heartbeat emission period (forwarded to the worker). */
    unsigned heartbeatMs = 25;
    /** Lease expiry deadline: a busy worker silent this long is
     * declared hung, SIGKILLed, and its job requeued. */
    unsigned heartbeatTimeoutMs = 5000;
    /** Lease budget per job: total execution attempts before the job
     * is failed-typed (1 = no requeues). */
    unsigned maxAttempts = 3;
    /** Requeue backoff base; attempt k waits base * 2^(k-1). */
    double backoffSeconds = 0.01;
    /** Durable queue journal path (required). */
    std::string queuePath;
    /** Worker respawns allowed across one batch; a dead worker past
     * the budget shrinks the pool instead. */
    unsigned workerRestartBudget = 16;
    /** Extra argv forwarded to every worker (chaos/fault flags). */
    std::vector<std::string> workerArgs;
    /** Optional metrics sink (see file comment for the counters). */
    telemetry::MetricsRegistry* metrics = nullptr;
    /** Optional fleet-observability sink. When set, workers are
     * spawned with --ship-obs and every broker-side queue event is
     * mirrored into the collector (see file comment). */
    obs::FleetCollector* collector = nullptr;

    // --- chaos hooks (tests and the CI smoke job) -------------------
    /** SIGKILL the worker holding the Nth lease granted (0 = off). */
    std::uint64_t killWorkerAfterLeases = 0;
    /** Throw (simulating a broker crash) after the Nth job completes
     * (0 = off); resume by re-running with the same queuePath. */
    std::uint64_t chaosAbortAfterCompletions = 0;
};

class Broker : public runner::Executor
{
  public:
    explicit Broker(BrokerConfig cfg);

    /**
     * Execute @p batch through the worker pool. Honors
     * RunnerOptions::journalPath (streams every completion into a
     * checkpoint journal, before the queue marks it done) and
     * RunnerOptions::resumePath (identity-validated prefill, exactly
     * like ExperimentRunner); timeoutSeconds is forwarded to workers
     * as their cooperative watchdog.
     */
    runner::RunSet run(const std::vector<runner::RunRequest>& batch,
                       const runner::RunnerOptions& options)
        const override;

    runner::RunSet
    run(const std::vector<runner::RunRequest>& batch) const
    {
        return run(batch, {});
    }

  private:
    BrokerConfig cfg_;
};

} // namespace mrp::queue

#endif // MRP_QUEUE_BROKER_HPP
