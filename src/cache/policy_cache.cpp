#include "cache/policy_cache.hpp"

#include "prof/profiler.hpp"
#include "util/logging.hpp"

namespace mrp::cache {

PolicyCache::PolicyCache(Addr bytes, std::uint32_t ways,
                         std::unique_ptr<LlcPolicy> policy, unsigned cores)
    : geom_(bytes, ways), policy_(std::move(policy)),
      blocks_(static_cast<std::size_t>(geom_.sets()) * geom_.ways()),
      demandMissesPerCore_(cores, 0)
{
    fatalIf(!policy_, "PolicyCache requires a policy");
    fatalIf(cores == 0, "PolicyCache requires at least one core");
}

PolicyCache::Block&
PolicyCache::blockAt(std::uint32_t set, std::uint32_t way)
{
    return blocks_[static_cast<std::size_t>(set) * geom_.ways() + way];
}

int
PolicyCache::findWay(std::uint32_t set, std::uint64_t tag,
                     std::uint32_t owner) const
{
    const Block* base =
        &blocks_[static_cast<std::size_t>(set) * geom_.ways()];
    for (std::uint32_t w = 0; w < geom_.ways(); ++w)
        if (base[w].valid && base[w].tag == tag && base[w].owner == owner)
            return static_cast<int>(w);
    return -1;
}

void
PolicyCache::attachTelemetry(telemetry::MetricsRegistry& registry)
{
    tel_ = std::make_unique<Telemetry>();
    tel_->demandAccesses = &registry.counter("llc.demand_accesses");
    tel_->demandHits = &registry.counter("llc.demand_hits");
    tel_->demandMisses = &registry.counter("llc.demand_misses");
    tel_->prefetchAccesses = &registry.counter("llc.prefetch_accesses");
    tel_->writebackAccesses =
        &registry.counter("llc.writeback_accesses");
    tel_->bypasses = &registry.counter("llc.bypasses");
    tel_->fills = &registry.counter("llc.fills");
    tel_->evictions = &registry.counter("llc.evictions");
    tel_->dirtyEvictions = &registry.counter("llc.dirty_evictions");
    policy_->attachTelemetry(registry);
}

LlcResult
PolicyCache::access(const AccessInfo& info)
{
    MRP_PROF_SCOPE_HOT("llc.access");
    const std::uint32_t set = geom_.setIndex(info.addr);
    const std::uint64_t tag = geom_.tag(info.addr);
    const std::uint32_t owner = policy_->tenantOf(info);

    switch (info.type) {
      case AccessType::Load:
      case AccessType::Store:
        ++stats_.demandAccesses;
        break;
      case AccessType::Prefetch:
        ++stats_.prefetchAccesses;
        break;
      case AccessType::Writeback:
        ++stats_.writebackAccesses;
        break;
    }
    if (tel_) {
        switch (info.type) {
          case AccessType::Load:
          case AccessType::Store:
            tel_->demandAccesses->add();
            break;
          case AccessType::Prefetch:
            tel_->prefetchAccesses->add();
            break;
          case AccessType::Writeback:
            tel_->writebackAccesses->add();
            break;
        }
    }

    LlcResult result;
    const int hit_way = findWay(set, tag, owner);
    if (hit_way >= 0) {
        result.hit = true;
        if (info.type == AccessType::Writeback)
            blockAt(set, static_cast<std::uint32_t>(hit_way)).dirty = true;
        switch (info.type) {
          case AccessType::Load:
          case AccessType::Store:
            ++stats_.demandHits;
            break;
          case AccessType::Prefetch:
            ++stats_.prefetchHits;
            break;
          case AccessType::Writeback:
            ++stats_.writebackHits;
            break;
        }
        if (tel_ && (info.type == AccessType::Load ||
                     info.type == AccessType::Store))
            tel_->demandHits->add();
        policy_->onHit(info, set, static_cast<std::uint32_t>(hit_way));
        if (observer_)
            observer_->onAccess(info, true, set, hit_way);
        return result;
    }

    // Miss path.
    switch (info.type) {
      case AccessType::Load:
      case AccessType::Store:
        ++stats_.demandMisses;
        if (info.core < demandMissesPerCore_.size())
            ++demandMissesPerCore_[info.core];
        break;
      case AccessType::Prefetch:
        ++stats_.prefetchMisses;
        break;
      case AccessType::Writeback:
        ++stats_.writebackMisses;
        break;
    }
    if (tel_ && (info.type == AccessType::Load ||
                 info.type == AccessType::Store))
        tel_->demandMisses->add();
    policy_->onMiss(info, set);
    if (observer_)
        observer_->onAccess(info, false, set, -1);

    // The fill may be confined to a partition; zero means the whole
    // set is available.
    const WayMask fill_mask = policy_->fillWays(info, set);
    const WayMask allowed =
        fill_mask != 0 ? fill_mask : fullWayMask(geom_.ways());

    // Find an invalid allowed way first: bypassing when a way is free
    // would waste capacity, so the policy is only consulted for full
    // (within the partition) sets.
    std::uint32_t fill_way = geom_.ways();
    for (std::uint32_t w = 0; w < geom_.ways(); ++w) {
        if ((allowed >> w & 1) != 0 && !blockAt(set, w).valid) {
            fill_way = w;
            break;
        }
    }
    if (fill_way == geom_.ways()) {
        if (policy_->shouldBypass(info, set)) {
            ++stats_.bypasses;
            if (tel_)
                tel_->bypasses->add();
            result.bypassed = true;
            if (observer_)
                observer_->onBypass(info, set);
            return result;
        }
        fill_way = fill_mask != 0
                       ? policy_->victimWayIn(info, set, fill_mask)
                       : policy_->victimWay(info, set);
        panicIf(fill_way >= geom_.ways() ||
                    (allowed >> fill_way & 1) == 0,
                "policy returned a victim way outside the fill mask");
        Block& victim = blockAt(set, fill_way);
        result.victim.valid = true;
        result.victim.blockAddress = geom_.blockAddrOf(set, victim.tag);
        result.victim.dirty = victim.dirty;
        ++stats_.evictions;
        if (victim.dirty)
            ++stats_.dirtyEvictions;
        if (tel_) {
            tel_->evictions->add();
            if (victim.dirty)
                tel_->dirtyEvictions->add();
        }
        policy_->onEvict(set, fill_way);
        if (observer_)
            observer_->onEvict(set, fill_way, result.victim.blockAddress);
    }

    Block& slot = blockAt(set, fill_way);
    slot.tag = tag;
    slot.owner = owner;
    slot.valid = true;
    slot.dirty = info.type == AccessType::Writeback;
    if (tel_)
        tel_->fills->add();
    policy_->onFill(info, set, fill_way);
    if (observer_)
        observer_->onFill(info, set, fill_way);
    return result;
}

bool
PolicyCache::contains(Addr addr) const
{
    // Presence check is owner-agnostic: any tenant's copy counts.
    const std::uint32_t set = geom_.setIndex(addr);
    const std::uint64_t tag = geom_.tag(addr);
    const Block* base =
        &blocks_[static_cast<std::size_t>(set) * geom_.ways()];
    for (std::uint32_t w = 0; w < geom_.ways(); ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

std::uint64_t
PolicyCache::ownerBlockCount(std::uint32_t owner) const
{
    std::uint64_t n = 0;
    for (const Block& b : blocks_)
        if (b.valid && b.owner == owner)
            ++n;
    return n;
}

std::uint64_t
PolicyCache::demandMissesOf(CoreId core) const
{
    fatalIf(core >= demandMissesPerCore_.size(),
            "core id out of range in demandMissesOf");
    return demandMissesPerCore_[core];
}

void
PolicyCache::resetStats()
{
    stats_.reset();
    for (auto& c : demandMissesPerCore_)
        c = 0;
}

} // namespace mrp::cache
