/**
 * @file
 * Set/way geometry of a cache and address-to-set mapping.
 */

#ifndef MRP_CACHE_GEOMETRY_HPP
#define MRP_CACHE_GEOMETRY_HPP

#include <cstdint>

#include "util/bitfield.hpp"
#include "util/logging.hpp"
#include "util/types.hpp"

namespace mrp::cache {

/** Immutable description of a cache's organization. */
class CacheGeometry
{
  public:
    /**
     * @param bytes total capacity in bytes (power-of-two multiple of
     *        the block size times associativity)
     * @param ways associativity
     */
    CacheGeometry(Addr bytes, std::uint32_t ways)
        : ways_(ways), sets_(computeSets(bytes, ways)),
          setShift_(log2Ceil(sets_))
    {
    }

    std::uint32_t ways() const { return ways_; }
    std::uint32_t sets() const { return sets_; }
    Addr bytes() const
    {
        return static_cast<Addr>(sets_) * ways_ * kBlockBytes;
    }

    /** Set index for a byte address. */
    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(blockAddr(addr) & (sets_ - 1));
    }

    /** Tag (block address above the set bits) for a byte address. */
    std::uint64_t
    tag(Addr addr) const
    {
        return blockAddr(addr) >> setShift_;
    }

    /** Reconstruct a block-aligned byte address from set and tag. */
    Addr
    blockAddrOf(std::uint32_t set, std::uint64_t tag) const
    {
        return ((tag << setShift_) | set) << kBlockShift;
    }

  private:
    static std::uint32_t
    computeSets(Addr bytes, std::uint32_t ways)
    {
        fatalIf(ways == 0, "cache must have at least one way");
        fatalIf(bytes % (static_cast<Addr>(kBlockBytes) * ways) != 0,
                "cache size not a multiple of block size * ways");
        const auto sets = static_cast<std::uint32_t>(
            bytes / kBlockBytes / ways);
        fatalIf(!isPowerOfTwo(sets), "set count must be a power of two");
        return sets;
    }

    std::uint32_t ways_;
    std::uint32_t sets_;
    unsigned setShift_;
};

} // namespace mrp::cache

#endif // MRP_CACHE_GEOMETRY_HPP
