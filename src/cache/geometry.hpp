/**
 * @file
 * Set/way geometry of a cache and address-to-set mapping.
 */

#ifndef MRP_CACHE_GEOMETRY_HPP
#define MRP_CACHE_GEOMETRY_HPP

#include <cstdint>
#include <string>

#include "util/bitfield.hpp"
#include "util/logging.hpp"
#include "util/types.hpp"

namespace mrp::cache {

/** Immutable description of a cache's organization. */
class CacheGeometry
{
  public:
    /**
     * @param bytes total capacity in bytes (power-of-two multiple of
     *        the block size times associativity)
     * @param ways associativity
     */
    CacheGeometry(Addr bytes, std::uint32_t ways)
        : ways_(ways), sets_(computeSets(bytes, ways)),
          setShift_(log2Ceil(sets_))
    {
    }

    /**
     * Why (bytes, ways) cannot form a valid geometry, or "" when it
     * can. The constructor enforces the same rules; this form lets
     * front-ends (CLI flag parsing, corpus assembly) reject a bad
     * configuration up front with a typed Config error instead of
     * aborting mid-run from a cache constructor.
     */
    static std::string
    describeInvalid(Addr bytes, std::uint32_t ways)
    {
        if (ways == 0)
            return "cache must have at least one way";
        if (bytes == 0 ||
            bytes % (static_cast<Addr>(kBlockBytes) * ways) != 0)
            return std::to_string(bytes) +
                   " bytes is not a positive multiple of " +
                   std::to_string(kBlockBytes) + "-byte blocks x " +
                   std::to_string(ways) + " ways";
        if (!isPowerOfTwo(bytes / kBlockBytes / ways))
            return std::to_string(bytes) + " bytes / " +
                   std::to_string(ways) +
                   " ways yields a non-power-of-two set count";
        return {};
    }

    std::uint32_t ways() const { return ways_; }
    std::uint32_t sets() const { return sets_; }
    Addr bytes() const
    {
        return static_cast<Addr>(sets_) * ways_ * kBlockBytes;
    }

    /** Set index for a byte address. */
    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(blockAddr(addr) & (sets_ - 1));
    }

    /** Tag (block address above the set bits) for a byte address. */
    std::uint64_t
    tag(Addr addr) const
    {
        return blockAddr(addr) >> setShift_;
    }

    /** Reconstruct a block-aligned byte address from set and tag. */
    Addr
    blockAddrOf(std::uint32_t set, std::uint64_t tag) const
    {
        return ((tag << setShift_) | set) << kBlockShift;
    }

  private:
    static std::uint32_t
    computeSets(Addr bytes, std::uint32_t ways)
    {
        const std::string why = describeInvalid(bytes, ways);
        fatalIf(!why.empty(), "invalid cache geometry: " + why);
        return static_cast<std::uint32_t>(bytes / kBlockBytes / ways);
    }

    std::uint32_t ways_;
    std::uint32_t sets_;
    unsigned setShift_;
};

} // namespace mrp::cache

#endif // MRP_CACHE_GEOMETRY_HPP
