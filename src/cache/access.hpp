/**
 * @file
 * Per-access metadata passed down the hierarchy to the LLC and its
 * management policy, including the per-core context that feature-based
 * predictors read (recent memory-access PC history).
 */

#ifndef MRP_CACHE_ACCESS_HPP
#define MRP_CACHE_ACCESS_HPP

#include <cstdint>

#include "util/history.hpp"
#include "util/types.hpp"

namespace mrp::cache {

/** Category of an access arriving at a cache level. */
enum class AccessType : std::uint8_t {
    Load,      //!< demand read
    Store,     //!< demand write
    Prefetch,  //!< hardware prefetch
    Writeback, //!< dirty eviction from the level above
};

/** True for demand loads and stores. */
constexpr bool
isDemand(AccessType t)
{
    return t == AccessType::Load || t == AccessType::Store;
}

/** The fake PC attributed to hardware prefetches (paper §3.2). */
inline constexpr Pc kPrefetchPc = 0xFADE0000ull;

/** The fake PC attributed to writeback accesses. */
inline constexpr Pc kWritebackPc = 0xFADE1000ull;

/**
 * Per-core state read by reuse predictors: the history of recent
 * demand memory-access PCs. recent(0) is the PC of the previous demand
 * access (the current access's PC travels in AccessInfo::pc), so the
 * paper's "W-th most recent memory access instruction" maps to the
 * current PC for W=0 and to recent(W-1) for W>=1.
 */
struct CoreContext
{
    /** Depth covers the largest W in any published feature set (17). */
    static constexpr std::size_t kPcHistoryDepth = 18;

    History<Pc> pcHistory{kPcHistoryDepth, 0};

    /** Record a completed demand access's PC. */
    void notePc(Pc pc) { pcHistory.push(pc); }
};

/** Metadata describing one access. */
struct AccessInfo
{
    Pc pc = 0;
    Addr addr = 0;
    CoreId core = 0;
    AccessType type = AccessType::Load;
    const CoreContext* ctx = nullptr; //!< may be null for writebacks
};

} // namespace mrp::cache

#endif // MRP_CACHE_ACCESS_HPP
