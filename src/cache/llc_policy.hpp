/**
 * @file
 * The pluggable LLC management-policy interface and the passive LLC
 * observer interface.
 *
 * A policy controls victim selection, may refuse allocation entirely
 * (bypass), and is notified of hits, misses, fills, and evictions so
 * it can maintain recency state and train predictors. Observers see
 * the same events but cannot influence decisions; they implement the
 * measurement-only modes (ROC probes, MIN's pre-pass recorder).
 */

#ifndef MRP_CACHE_LLC_POLICY_HPP
#define MRP_CACHE_LLC_POLICY_HPP

#include <cstdint>
#include <string>

#include "cache/access.hpp"
#include "cache/geometry.hpp"
#include "util/types.hpp"

namespace mrp::telemetry {
class MetricsRegistry;
}

namespace mrp::cache {

/**
 * Bitmask of ways a fill may use (bit w = way w allowed). Zero means
 * "unrestricted": the whole set is available. Way-partitioned policies
 * return a proper subset; the cache then confines both the
 * invalid-way scan and victim selection to it. Caps associativity at
 * 64 ways for partitioned configurations only.
 */
using WayMask = std::uint64_t;

/** Mask with the low @p ways bits set (ways == 64 yields all-ones). */
constexpr WayMask
fullWayMask(std::uint32_t ways)
{
    return ways >= 64 ? ~WayMask{0} : (WayMask{1} << ways) - 1;
}

/** Interface implemented by every LLC management policy. */
class LlcPolicy
{
  public:
    virtual ~LlcPolicy() = default;

    /** Human-readable policy name for reports. */
    virtual std::string name() const = 0;

    /**
     * The lookup for @p info hit at (@p set, @p way): update recency /
     * promotion state, train predictors.
     */
    virtual void onHit(const AccessInfo& info, std::uint32_t set,
                       std::uint32_t way) = 0;

    /**
     * The lookup for @p info missed in @p set. Called before any fill
     * decision, for every miss (even ones that end up bypassed).
     */
    virtual void
    onMiss(const AccessInfo& info, std::uint32_t set)
    {
        (void)info;
        (void)set;
    }

    /**
     * Decide whether to skip allocating the missing block. Called only
     * after onMiss, and never for fills the cache itself refuses to
     * bypass (see PolicyCache).
     */
    virtual bool
    shouldBypass(const AccessInfo& info, std::uint32_t set)
    {
        (void)info;
        (void)set;
        return false;
    }

    /**
     * Choose a victim way in a full @p set. Invalid ways are consumed
     * by the cache before this is ever called.
     */
    virtual std::uint32_t victimWay(const AccessInfo& info,
                                    std::uint32_t set) = 0;

    /**
     * Restrict which ways the fill for @p info may use in @p set.
     * Zero (the default) means unrestricted. Way-partitioning policies
     * return the owning tenant's partition mask; the cache confines
     * the invalid-way scan and victim selection to it.
     */
    virtual WayMask
    fillWays(const AccessInfo& info, std::uint32_t set)
    {
        (void)info;
        (void)set;
        return 0;
    }

    /**
     * Choose a victim among the ways set in @p mask (never zero, and
     * every masked way is valid). The default delegates to victimWay —
     * correct whenever fillWays returned "unrestricted"; policies that
     * partition must override and stay inside the mask.
     */
    virtual std::uint32_t
    victimWayIn(const AccessInfo& info, std::uint32_t set, WayMask mask)
    {
        (void)mask;
        return victimWay(info, set);
    }

    /**
     * The tenant (partition owner) an access belongs to; 0 when the
     * cache is unpartitioned. Blocks are tagged with this at fill so
     * tenants with colliding address spaces never cross-hit.
     */
    virtual std::uint32_t
    tenantOf(const AccessInfo& info) const
    {
        (void)info;
        return 0;
    }

    /** The missing block was installed at (@p set, @p way). */
    virtual void onFill(const AccessInfo& info, std::uint32_t set,
                        std::uint32_t way) = 0;

    /** The block at (@p set, @p way) is being evicted. */
    virtual void
    onEvict(std::uint32_t set, std::uint32_t way)
    {
        (void)set;
        (void)way;
    }

    /**
     * Opt-in introspection: register this policy's metrics (decision
     * counters, predictor state probes) with @p registry. Called at
     * most once, after warmup, and only when telemetry is enabled for
     * the run; the default is a no-op so policies without internal
     * state need not care.
     */
    virtual void
    attachTelemetry(telemetry::MetricsRegistry& registry)
    {
        (void)registry;
    }
};

/** Passive observer of LLC events; cannot influence decisions. */
class LlcObserver
{
  public:
    virtual ~LlcObserver() = default;

    /** Every access, with its hit/miss outcome; way is -1 on miss. */
    virtual void
    onAccess(const AccessInfo& info, bool hit, std::uint32_t set, int way)
    {
        (void)info;
        (void)hit;
        (void)set;
        (void)way;
    }

    /** A block was installed at (set, way). */
    virtual void
    onFill(const AccessInfo& info, std::uint32_t set, std::uint32_t way)
    {
        (void)info;
        (void)set;
        (void)way;
    }

    /** The block at (set, way) was evicted. */
    virtual void
    onEvict(std::uint32_t set, std::uint32_t way, Addr block_address)
    {
        (void)set;
        (void)way;
        (void)block_address;
    }

    /** The fill for @p info was bypassed. */
    virtual void
    onBypass(const AccessInfo& info, std::uint32_t set)
    {
        (void)info;
        (void)set;
    }
};

} // namespace mrp::cache

#endif // MRP_CACHE_LLC_POLICY_HPP
