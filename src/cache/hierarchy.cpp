#include "cache/hierarchy.hpp"

#include "prof/profiler.hpp"
#include "util/logging.hpp"

namespace mrp::cache {

HierarchyConfig
multiCoreConfig()
{
    HierarchyConfig cfg;
    cfg.cores = 4;
    cfg.llcBytes = 8 * 1024 * 1024;
    return cfg;
}

Hierarchy::Hierarchy(const HierarchyConfig& cfg,
                     std::unique_ptr<LlcPolicy> llc_policy)
    : cfg_(cfg),
      llc_(cfg.llcBytes, cfg.llcWays, std::move(llc_policy), cfg.cores)
{
    fatalIf(cfg.cores == 0, "hierarchy needs at least one core");
    for (unsigned c = 0; c < cfg.cores; ++c) {
        l1_.emplace_back("L1D", cfg.l1Bytes, cfg.l1Ways);
        l2_.emplace_back("L2", cfg.l2Bytes, cfg.l2Ways);
        prefetchers_.emplace_back(cfg.prefetcher);
    }
}

Cycle
Hierarchy::access(CoreId core, Pc pc, Addr addr, bool is_write,
                  const CoreContext* ctx)
{
    panicIf(core >= cfg_.cores, "core id out of range");

    if (l1_[core].access(addr, is_write)) {
        if (prefetchTracking_)
            prefetchers_[core].observeDemandHit(addr);
        return cfg_.l1Latency;
    }

    // L1 miss: train the stream prefetcher before servicing the miss.
    pfBuf_.clear();
    if (cfg_.prefetchEnabled)
        prefetchers_[core].onL1Miss(addr, pfBuf_);

    Cycle latency;
    if (l2_[core].access(addr, false)) {
        latency = cfg_.l2Latency;
    } else {
        AccessInfo info;
        info.pc = pc;
        info.addr = addr;
        info.core = core;
        info.type = is_write ? AccessType::Store : AccessType::Load;
        info.ctx = ctx;
        const LlcResult r = llc_.access(info);
        if (r.hit) {
            latency = cfg_.llcLatency;
        } else {
            latency = cfg_.memLatency;
            ++dramReads_;
        }
        if (r.victim.valid && r.victim.dirty)
            ++dramWrites_;
        const VictimBlock v2 = l2_[core].fill(addr, false, false);
        if (v2.valid && v2.dirty)
            writebackToLlc(core, v2.blockAddress);
    }

    const VictimBlock v1 = l1_[core].fill(addr, is_write, false);
    if (v1.valid && v1.dirty)
        writebackToL2(core, v1.blockAddress);

    if (!pfBuf_.empty())
        issuePrefetches(core, ctx);
    return latency;
}

void
Hierarchy::writebackToL2(CoreId core, Addr block_address)
{
    ++l2_[core].stats().writebackAccesses;
    if (l2_[core].markDirty(block_address)) {
        ++l2_[core].stats().writebackHits;
        return;
    }
    // Write-allocate in L2 (non-inclusive hierarchy: the L1 victim may
    // no longer be present below).
    ++l2_[core].stats().writebackMisses;
    const VictimBlock v = l2_[core].fill(block_address, true, false);
    if (v.valid && v.dirty)
        writebackToLlc(core, v.blockAddress);
}

void
Hierarchy::writebackToLlc(CoreId core, Addr block_address)
{
    MRP_PROF_SCOPE_HOT("llc.writeback");
    AccessInfo info;
    info.pc = kWritebackPc;
    info.addr = block_address;
    info.core = core;
    info.type = AccessType::Writeback;
    info.ctx = nullptr;
    const LlcResult r = llc_.access(info);
    if (r.bypassed)
        ++dramWrites_; // bypassed dirty data goes straight to DRAM
    if (r.victim.valid && r.victim.dirty)
        ++dramWrites_;
}

void
Hierarchy::issuePrefetches(CoreId core, const CoreContext* ctx)
{
    MRP_PROF_SCOPE_HOT("llc.prefetch.issue");
    // Iterate by index: the LLC writebacks triggered below never touch
    // pfBuf_, but keep the loop robust anyway.
    for (std::size_t i = 0; i < pfBuf_.size(); ++i) {
        const Addr addr = pfBuf_[i];
        if (l1_[core].contains(addr))
            continue;
        if (!l2_[core].touch(addr)) {
            AccessInfo info;
            info.pc = kPrefetchPc;
            info.addr = addr;
            info.core = core;
            info.type = AccessType::Prefetch;
            info.ctx = ctx;
            const LlcResult r = llc_.access(info);
            if (!r.hit)
                ++dramReads_;
            if (r.victim.valid && r.victim.dirty)
                ++dramWrites_;
            ++l2_[core].stats().prefetchAccesses;
            const VictimBlock v2 = l2_[core].fill(addr, false, true);
            if (v2.valid && v2.dirty)
                writebackToLlc(core, v2.blockAddress);
        }
        ++l1_[core].stats().prefetchAccesses;
        const VictimBlock v1 = l1_[core].fill(addr, false, true);
        if (v1.valid && v1.dirty)
            writebackToL2(core, v1.blockAddress);
    }
}

void
Hierarchy::attachTelemetry(telemetry::MetricsRegistry& registry)
{
    llc_.attachTelemetry(registry);
    registry.gaugeFn("mem.dram_reads", [this] {
        return static_cast<double>(dramReads_);
    });
    registry.gaugeFn("mem.dram_writes", [this] {
        return static_cast<double>(dramWrites_);
    });
    if (!cfg_.prefetchEnabled)
        return;
    prefetchTracking_ = true;
    for (auto& p : prefetchers_)
        p.enableTracking();
    const auto sum =
        [this](std::uint64_t (prefetch::StreamPrefetcher::*get)()
                   const) {
            std::uint64_t n = 0;
            for (const auto& p : prefetchers_)
                n += (p.*get)();
            return n;
        };
    using SP = prefetch::StreamPrefetcher;
    registry.gaugeFn("prefetch.issued", [sum] {
        return static_cast<double>(sum(&SP::trackedIssued));
    });
    registry.gaugeFn("prefetch.useful", [sum] {
        return static_cast<double>(sum(&SP::useful));
    });
    registry.gaugeFn("prefetch.late", [sum] {
        return static_cast<double>(sum(&SP::late));
    });
    registry.gaugeFn("prefetch.demand_l1_misses", [sum] {
        return static_cast<double>(sum(&SP::demandMisses));
    });
    registry.gaugeFn("prefetch.accuracy", [sum] {
        const std::uint64_t issued = sum(&SP::trackedIssued);
        return issued == 0 ? 0.0
                           : static_cast<double>(sum(&SP::useful)) /
                                 static_cast<double>(issued);
    });
    registry.gaugeFn("prefetch.coverage", [sum] {
        const std::uint64_t base =
            sum(&SP::useful) + sum(&SP::demandMisses);
        return base == 0 ? 0.0
                         : static_cast<double>(sum(&SP::useful)) /
                               static_cast<double>(base);
    });
}

void
Hierarchy::resetStats()
{
    for (auto& c : l1_)
        c.stats().reset();
    for (auto& c : l2_)
        c.stats().reset();
    llc_.resetStats();
    dramReads_ = 0;
    dramWrites_ = 0;
}

} // namespace mrp::cache
