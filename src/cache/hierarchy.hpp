/**
 * @file
 * The three-level memory hierarchy of the paper's performance model:
 * per-core 32KB/8-way L1D and 256KB/8-way unified L2, a shared
 * policy-managed LLC, a per-core stream prefetcher, and a flat-latency
 * DRAM (200 cycles beyond the LLC).
 *
 * The hierarchy is *functional*: an access updates cache state and
 * returns the latency the timing model should charge. Keeping the
 * functional access order independent of timing makes the LLC
 * reference stream policy-invariant, which is what allows Belady's MIN
 * to be computed with a recording pre-pass (see policy/min.hpp).
 */

#ifndef MRP_CACHE_HIERARCHY_HPP
#define MRP_CACHE_HIERARCHY_HPP

#include <memory>
#include <vector>

#include "cache/basic_cache.hpp"
#include "cache/policy_cache.hpp"
#include "prefetch/stream_prefetcher.hpp"

namespace mrp::cache {

/** Sizing and latency parameters (defaults follow the paper §4.1). */
struct HierarchyConfig
{
    unsigned cores = 1;
    Addr l1Bytes = 32 * 1024;
    std::uint32_t l1Ways = 8;
    Addr l2Bytes = 256 * 1024;
    std::uint32_t l2Ways = 8;
    Addr llcBytes = 2 * 1024 * 1024;
    std::uint32_t llcWays = 16;
    Cycle l1Latency = 4;
    Cycle l2Latency = 16;
    Cycle llcLatency = 40;
    Cycle memLatency = 240; //!< 200-cycle DRAM beyond the LLC path
    bool prefetchEnabled = true;
    prefetch::StreamPrefetcherConfig prefetcher{};
};

/** The paper's 4-core configuration: shared 8MB LLC. */
HierarchyConfig multiCoreConfig();

/** Composite of private L1/L2 caches, prefetchers, and the shared LLC. */
class Hierarchy
{
  public:
    Hierarchy(const HierarchyConfig& cfg,
              std::unique_ptr<LlcPolicy> llc_policy);

    /**
     * Perform one demand access and return its latency in cycles.
     * @param ctx per-core predictor context (PC history); the caller
     *        updates it *after* this returns.
     */
    Cycle access(CoreId core, Pc pc, Addr addr, bool is_write,
                 const CoreContext* ctx);

    PolicyCache& llc() { return llc_; }
    const PolicyCache& llc() const { return llc_; }
    BasicCache& l1(CoreId core) { return l1_[core]; }
    const BasicCache& l1(CoreId core) const { return l1_[core]; }
    BasicCache& l2(CoreId core) { return l2_[core]; }
    const BasicCache& l2(CoreId core) const { return l2_[core]; }

    const HierarchyConfig& config() const { return cfg_; }

    prefetch::StreamPrefetcher& prefetcher(CoreId core)
    {
        return prefetchers_[core];
    }

    std::uint64_t dramReads() const { return dramReads_; }
    std::uint64_t dramWrites() const { return dramWrites_; }

    /**
     * Enable telemetry for the whole hierarchy: LLC event counters and
     * policy metrics, prefetcher accuracy/coverage probes, and DRAM
     * traffic gauges. Call at the start of the measurement window; the
     * registered callbacks reference this hierarchy, so it must
     * outlive every snapshot taken from @p registry.
     */
    void attachTelemetry(telemetry::MetricsRegistry& registry);

    /** Zero every statistic without disturbing cache contents. */
    void resetStats();

  private:
    void writebackToL2(CoreId core, Addr block_address);
    void writebackToLlc(CoreId core, Addr block_address);
    void issuePrefetches(CoreId core, const CoreContext* ctx);

    HierarchyConfig cfg_;
    std::vector<BasicCache> l1_;
    std::vector<BasicCache> l2_;
    std::vector<prefetch::StreamPrefetcher> prefetchers_;
    PolicyCache llc_;
    std::vector<Addr> pfBuf_;
    std::uint64_t dramReads_ = 0;
    std::uint64_t dramWrites_ = 0;
    bool prefetchTracking_ = false;
};

} // namespace mrp::cache

#endif // MRP_CACHE_HIERARCHY_HPP
