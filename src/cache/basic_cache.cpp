#include "cache/basic_cache.hpp"

namespace mrp::cache {

BasicCache::BasicCache(std::string name, Addr bytes, std::uint32_t ways)
    : name_(std::move(name)), geom_(bytes, ways),
      blocks_(static_cast<std::size_t>(geom_.sets()) * geom_.ways())
{
}

BasicCache::Block*
BasicCache::find(Addr addr)
{
    const std::uint32_t set = geom_.setIndex(addr);
    const std::uint64_t tag = geom_.tag(addr);
    Block* base = &blocks_[static_cast<std::size_t>(set) * geom_.ways()];
    for (std::uint32_t w = 0; w < geom_.ways(); ++w)
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    return nullptr;
}

const BasicCache::Block*
BasicCache::find(Addr addr) const
{
    return const_cast<BasicCache*>(this)->find(addr);
}

bool
BasicCache::access(Addr addr, bool is_write)
{
    ++stats_.demandAccesses;
    if (Block* b = find(addr)) {
        b->lastUse = ++useClock_;
        if (is_write)
            b->dirty = true;
        ++stats_.demandHits;
        return true;
    }
    ++stats_.demandMisses;
    return false;
}

bool
BasicCache::contains(Addr addr) const
{
    return find(addr) != nullptr;
}

bool
BasicCache::touch(Addr addr)
{
    if (Block* b = find(addr)) {
        b->lastUse = ++useClock_;
        return true;
    }
    return false;
}

VictimBlock
BasicCache::fill(Addr addr, bool dirty, bool prefetched)
{
    const std::uint32_t set = geom_.setIndex(addr);
    const std::uint64_t tag = geom_.tag(addr);
    Block* base = &blocks_[static_cast<std::size_t>(set) * geom_.ways()];

    Block* slot = nullptr;
    for (std::uint32_t w = 0; w < geom_.ways(); ++w) {
        if (!base[w].valid) {
            slot = &base[w];
            break;
        }
        if (!slot || base[w].lastUse < slot->lastUse)
            slot = &base[w];
    }

    VictimBlock victim;
    if (slot->valid) {
        victim.valid = true;
        victim.blockAddress = geom_.blockAddrOf(set, slot->tag);
        victim.dirty = slot->dirty;
        ++stats_.evictions;
        if (slot->dirty)
            ++stats_.dirtyEvictions;
    }

    slot->tag = tag;
    slot->valid = true;
    slot->dirty = dirty;
    slot->prefetched = prefetched;
    slot->lastUse = ++useClock_;
    return victim;
}

bool
BasicCache::markDirty(Addr addr)
{
    if (Block* b = find(addr)) {
        b->dirty = true;
        return true;
    }
    return false;
}

VictimBlock
BasicCache::invalidate(Addr addr)
{
    VictimBlock out;
    if (Block* b = find(addr)) {
        out.valid = true;
        out.blockAddress = blockAddr(addr) << kBlockShift;
        out.dirty = b->dirty;
        b->valid = false;
        b->dirty = false;
    }
    return out;
}

} // namespace mrp::cache
