/**
 * @file
 * The shared last-level cache with a pluggable management policy.
 */

#ifndef MRP_CACHE_POLICY_CACHE_HPP
#define MRP_CACHE_POLICY_CACHE_HPP

#include <memory>
#include <string>
#include <vector>

#include "cache/basic_cache.hpp"
#include "cache/llc_policy.hpp"
#include "stats/level_stats.hpp"
#include "telemetry/metrics.hpp"

namespace mrp::cache {

/** Outcome of one LLC access. */
struct LlcResult
{
    bool hit = false;
    bool bypassed = false;
    VictimBlock victim; //!< LLC block displaced by the fill, if any
};

/**
 * Set-associative LLC whose victim selection, bypass, and promotion
 * behaviour are delegated to an LlcPolicy. All access types flow
 * through access(); writeback fills install dirty.
 */
class PolicyCache
{
  public:
    PolicyCache(Addr bytes, std::uint32_t ways,
                std::unique_ptr<LlcPolicy> policy, unsigned cores);

    const CacheGeometry& geometry() const { return geom_; }
    LlcPolicy& policy() { return *policy_; }

    /** Attach a passive observer (may be null to detach). */
    void setObserver(LlcObserver* obs) { observer_ = obs; }

    /**
     * Register "llc.*" event counters with @p registry and forward to
     * the policy's attachTelemetry. Until this is called the hot path
     * pays a single null check.
     */
    void attachTelemetry(telemetry::MetricsRegistry& registry);

    /**
     * Perform one access: lookup, policy notification, and — on a
     * miss — the fill with policy-controlled bypass and victim choice.
     */
    LlcResult access(const AccessInfo& info);

    /** Non-mutating presence check. */
    bool contains(Addr addr) const;

    stats::LevelStats& stats() { return stats_; }
    const stats::LevelStats& stats() const { return stats_; }

    /** LLC demand misses attributed to a core. */
    std::uint64_t demandMissesOf(CoreId core) const;

    /** Valid blocks currently owned by tenant @p owner (O(cache)). */
    std::uint64_t ownerBlockCount(std::uint32_t owner) const;

    /** Zero all statistics (end of warmup). */
    void resetStats();

  private:
    struct Block
    {
        std::uint64_t tag = 0;
        std::uint32_t owner = 0; //!< tenant id; 0 when unpartitioned
        bool valid = false;
        bool dirty = false;
    };

    /** Counters mirrored into the metrics registry when attached. */
    struct Telemetry
    {
        telemetry::Counter* demandAccesses = nullptr;
        telemetry::Counter* demandHits = nullptr;
        telemetry::Counter* demandMisses = nullptr;
        telemetry::Counter* prefetchAccesses = nullptr;
        telemetry::Counter* writebackAccesses = nullptr;
        telemetry::Counter* bypasses = nullptr;
        telemetry::Counter* fills = nullptr;
        telemetry::Counter* evictions = nullptr;
        telemetry::Counter* dirtyEvictions = nullptr;
    };

    Block& blockAt(std::uint32_t set, std::uint32_t way);
    int findWay(std::uint32_t set, std::uint64_t tag,
                std::uint32_t owner) const;

    CacheGeometry geom_;
    std::unique_ptr<LlcPolicy> policy_;
    LlcObserver* observer_ = nullptr;
    std::vector<Block> blocks_;
    stats::LevelStats stats_;
    std::vector<std::uint64_t> demandMissesPerCore_;
    std::unique_ptr<Telemetry> tel_; //!< null until attachTelemetry
};

} // namespace mrp::cache

#endif // MRP_CACHE_POLICY_CACHE_HPP
