/**
 * @file
 * A plain true-LRU write-back cache used for the L1D and L2 levels.
 *
 * The upper levels do not need pluggable policies (the paper's
 * techniques manage only the LLC), so this class is kept simple and
 * fast: linear tag search within a set and 64-bit LRU stamps.
 */

#ifndef MRP_CACHE_BASIC_CACHE_HPP
#define MRP_CACHE_BASIC_CACHE_HPP

#include <string>
#include <vector>

#include "cache/geometry.hpp"
#include "stats/level_stats.hpp"
#include "util/types.hpp"

namespace mrp::cache {

/** Description of a block displaced by a fill. */
struct VictimBlock
{
    bool valid = false;   //!< a block was displaced
    Addr blockAddress = 0;
    bool dirty = false;
};

/** True-LRU set-associative write-back cache. */
class BasicCache
{
  public:
    BasicCache(std::string name, Addr bytes, std::uint32_t ways);

    const std::string& name() const { return name_; }
    const CacheGeometry& geometry() const { return geom_; }

    /**
     * Look up @p addr; on a hit, update recency and (for writes) the
     * dirty bit.
     * @return true on hit
     */
    bool access(Addr addr, bool is_write);

    /** Non-mutating presence check. */
    bool contains(Addr addr) const;

    /**
     * Refresh recency of a block if present (no statistics recorded);
     * used by prefetch probes.
     * @return true if the block was present
     */
    bool touch(Addr addr);

    /**
     * Install the block of @p addr, assumed absent.
     * @param dirty install in dirty state (writeback allocation)
     * @param prefetched tag the block as brought in by a prefetch
     * @return the displaced block, if any
     */
    VictimBlock fill(Addr addr, bool dirty, bool prefetched);

    /** Mark an (assumed present) block dirty; returns false if absent. */
    bool markDirty(Addr addr);

    /** Invalidate a block if present; returns its prior state. */
    VictimBlock invalidate(Addr addr);

    stats::LevelStats& stats() { return stats_; }
    const stats::LevelStats& stats() const { return stats_; }

  private:
    struct Block
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
    };

    Block* find(Addr addr);
    const Block* find(Addr addr) const;

    std::string name_;
    CacheGeometry geom_;
    std::vector<Block> blocks_; // sets * ways, set-major
    std::uint64_t useClock_ = 0;
    stats::LevelStats stats_;
};

} // namespace mrp::cache

#endif // MRP_CACHE_BASIC_CACHE_HPP
