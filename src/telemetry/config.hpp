/**
 * @file
 * Telemetry opt-in knobs, kept dependency-free so DriverConfig (and
 * through it every RunRequest) can embed them without pulling the
 * rest of the telemetry library into each header.
 */

#ifndef MRP_TELEMETRY_CONFIG_HPP
#define MRP_TELEMETRY_CONFIG_HPP

#include <cstdint>

namespace mrp::telemetry {

/**
 * Per-run telemetry opt-in. Disabled by default: the drivers then
 * attach nothing, every instrumentation site reduces to one null
 * check, and reports are byte-identical to a build without telemetry.
 */
struct TelemetryConfig
{
    bool enabled = false;
    /** LLC accesses per epoch snapshot (time-series granularity). */
    std::uint64_t epochAccesses = 100000;
};

} // namespace mrp::telemetry

#endif // MRP_TELEMETRY_CONFIG_HPP
