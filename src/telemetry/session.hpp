/**
 * @file
 * One run's telemetry: the registry, the epoch clock, and the
 * reuse-distance tracker.
 *
 * A Session is created by a simulation driver when the run's
 * TelemetryConfig enables telemetry, attached to the instrumented
 * components after warmup (so every metric covers exactly the
 * measurement window and reconciles with LevelStats), ticked once per
 * LLC access, and finished into an immutable RunTelemetry that
 * travels with the run's result.
 */

#ifndef MRP_TELEMETRY_SESSION_HPP
#define MRP_TELEMETRY_SESSION_HPP

#include <memory>

#include "stats/reuse_histogram.hpp"
#include "telemetry/config.hpp"
#include "telemetry/metrics.hpp"

namespace mrp::telemetry {

/** Registry state at one epoch boundary (cumulative since attach). */
struct EpochSample
{
    std::uint64_t index = 0;    //!< 0-based epoch number
    std::uint64_t accesses = 0; //!< LLC accesses covered so far
    Snapshot snapshot;
};

/** Everything a finished run exports. */
struct RunTelemetry
{
    std::uint64_t epochAccesses = 0; //!< configured interval
    std::uint64_t accesses = 0;      //!< LLC accesses observed
    Snapshot finalSnapshot;
    /**
     * Cumulative snapshots at each epoch boundary, plus one trailing
     * partial epoch when the run does not end exactly on a boundary —
     * so every run with at least one access has at least one epoch.
     */
    std::vector<EpochSample> epochs;
};

/**
 * LLC reuse-distance instrument: distance = number of other LLC
 * accesses between two consecutive accesses to the same block. Every
 * observed access is either a reuse (one histogram sample) or the
 * first touch of its block (cold counter), so
 * `llc.reuse_distance.total + llc.reuse.cold_accesses` always equals
 * the accesses observed — the reconciliation the integration test
 * checks against LevelStats. The distance bookkeeping itself is the
 * shared stats::ReuseDistanceCounter (also the substrate of the MRC
 * engine's samplers); this class only routes its output into the
 * registry's Histogram/Counter.
 */
class ReuseDistanceTracker
{
  public:
    explicit ReuseDistanceTracker(MetricsRegistry& registry);

    /** Observe one LLC access to block @p blockKey. */
    void observe(std::uint64_t blockKey);

  private:
    Histogram* distance_;
    Counter* cold_;
    stats::ReuseDistanceCounter counter_;
};

/** Per-run telemetry owner; see file comment for the lifecycle. */
class Session
{
  public:
    explicit Session(const TelemetryConfig& cfg);

    MetricsRegistry& registry() { return registry_; }
    ReuseDistanceTracker& reuse() { return reuse_; }

    /** One LLC access: advances the epoch clock, snapshotting the
     * registry at every epoch boundary. */
    void
    tick()
    {
        ++accesses_;
        if (accesses_ % cfg_.epochAccesses == 0)
            closeEpoch();
    }

    /** Seal the session into its exportable form. */
    std::shared_ptr<const RunTelemetry> finish();

  private:
    void closeEpoch();

    TelemetryConfig cfg_;
    MetricsRegistry registry_;
    ReuseDistanceTracker reuse_;
    std::uint64_t accesses_ = 0;
    std::vector<EpochSample> epochs_;
};

} // namespace mrp::telemetry

#endif // MRP_TELEMETRY_SESSION_HPP
