#include "telemetry/metrics.hpp"

#include "util/logging.hpp"

namespace mrp::telemetry {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size(), 0)
{
    fatalIf(bounds_.empty(), ErrorCode::Config,
            "histogram needs at least one bucket bound");
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        fatalIf(bounds_[i] <= bounds_[i - 1], ErrorCode::Config,
                "histogram bounds must be strictly ascending");
}

std::vector<std::int64_t>
powerOfTwoBounds(unsigned maxExp)
{
    fatalIf(maxExp >= 63, ErrorCode::Config,
            "power-of-two bound exponent out of range");
    std::vector<std::int64_t> bounds;
    bounds.reserve(maxExp + 2);
    bounds.push_back(0);
    for (unsigned e = 0; e <= maxExp; ++e)
        bounds.push_back(std::int64_t{1} << e);
    return bounds;
}

const MetricSnapshot*
Snapshot::find(const std::string& name) const
{
    for (const auto& m : metrics)
        if (m.name == name)
            return &m;
    return nullptr;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    Entry& e = entries_[name];
    if (!e.counter) {
        fatalIf(e.gauge || e.histogram || e.fn, ErrorCode::Config,
                "metric registered with two kinds: " + name);
        e.kind = MetricSnapshot::Kind::Counter;
        e.counter = std::make_unique<Counter>();
    }
    return *e.counter;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    Entry& e = entries_[name];
    if (!e.gauge) {
        fatalIf(e.counter || e.histogram || e.fn, ErrorCode::Config,
                "metric registered with two kinds: " + name);
        e.kind = MetricSnapshot::Kind::Gauge;
        e.gauge = std::make_unique<Gauge>();
    }
    return *e.gauge;
}

Histogram&
MetricsRegistry::histogram(const std::string& name,
                           std::vector<std::int64_t> bounds)
{
    Entry& e = entries_[name];
    if (!e.histogram) {
        fatalIf(e.counter || e.gauge || e.fn, ErrorCode::Config,
                "metric registered with two kinds: " + name);
        e.kind = MetricSnapshot::Kind::Histogram;
        e.histogram = std::make_unique<Histogram>(std::move(bounds));
    }
    return *e.histogram;
}

void
MetricsRegistry::gaugeFn(const std::string& name,
                         std::function<double()> fn)
{
    fatalIf(!fn, ErrorCode::Config, "null gauge probe: " + name);
    Entry& e = entries_[name];
    fatalIf(e.counter || e.gauge || e.histogram || e.fn,
            ErrorCode::Config,
            "metric registered with two kinds: " + name);
    e.kind = MetricSnapshot::Kind::Gauge;
    e.fn = std::move(fn);
}

Snapshot
MetricsRegistry::snapshot() const
{
    Snapshot snap;
    snap.metrics.reserve(entries_.size());
    for (const auto& [name, e] : entries_) {
        MetricSnapshot m;
        m.name = name;
        m.kind = e.kind;
        switch (e.kind) {
          case MetricSnapshot::Kind::Counter:
            m.counter = e.counter->value();
            break;
          case MetricSnapshot::Kind::Gauge:
            m.gauge = e.fn ? e.fn() : e.gauge->value();
            break;
          case MetricSnapshot::Kind::Histogram: {
            const Histogram& h = *e.histogram;
            m.histogram.bounds = h.bounds();
            m.histogram.counts.resize(h.bounds().size());
            for (std::size_t i = 0; i < h.bounds().size(); ++i)
                m.histogram.counts[i] = h.bucketCount(i);
            m.histogram.overflow = h.overflow();
            m.histogram.total = h.total();
            m.histogram.sum = h.sum();
            break;
          }
        }
        snap.metrics.push_back(std::move(m));
    }
    return snap;
}

} // namespace mrp::telemetry
