/**
 * @file
 * Metrics registry: named counters, gauges, and fixed-bucket
 * histograms for per-run introspection.
 *
 * Design constraints (in priority order):
 *  - Near-zero cost when unused: instrumented components hold plain
 *    pointers that are null until a registry is attached, so the
 *    disabled hot path is one branch on a pointer.
 *  - Atomic-free hot path: a registry belongs to exactly one
 *    simulation run, and every run executes on one thread (the
 *    parallel runner parallelizes *across* runs), so increments are
 *    plain integer adds.
 *  - Deterministic export: metrics are stored name-sorted, so a
 *    snapshot serializes identically at any worker count.
 *
 * Registration (name lookup, allocation) is expected once per run at
 * attach time; only add()/set()/record() are hot.
 */

#ifndef MRP_TELEMETRY_METRICS_HPP
#define MRP_TELEMETRY_METRICS_HPP

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mrp::telemetry {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Point-in-time numeric value. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Fixed-bucket histogram over signed integer samples.
 *
 * Bucket i counts samples v with bounds[i-1] < v <= bounds[i] (bucket
 * 0 has no lower limit, so a value below the first bound lands
 * there); samples above the last bound land in the overflow bucket.
 * Bounds are fixed at registration: no rebucketing ever happens on
 * the hot path.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<std::int64_t> bounds);

    void
    record(std::int64_t v)
    {
        const auto it =
            std::lower_bound(bounds_.begin(), bounds_.end(), v);
        if (it == bounds_.end())
            ++overflow_;
        else
            ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
        ++total_;
        sum_ += v;
    }

    const std::vector<std::int64_t>& bounds() const { return bounds_; }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t overflow() const { return overflow_; }
    /** Total samples recorded (overflow included). */
    std::uint64_t total() const { return total_; }
    std::int64_t sum() const { return sum_; }

  private:
    std::vector<std::int64_t> bounds_; //!< strictly ascending
    std::vector<std::uint64_t> counts_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    std::int64_t sum_ = 0;
};

/** `{0, 1, 2, 4, ..., 2^maxExp}`: the ladder used for distances. */
std::vector<std::int64_t> powerOfTwoBounds(unsigned maxExp);

/** What a metric was at snapshot time. */
struct HistogramSnapshot
{
    std::vector<std::int64_t> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
    std::int64_t sum = 0;
};

struct MetricSnapshot
{
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

    std::string name;
    Kind kind = Kind::Counter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    HistogramSnapshot histogram;
};

/** A registry's state at one instant; entries are name-sorted. */
struct Snapshot
{
    std::vector<MetricSnapshot> metrics;

    /** Entry by exact name, or null. */
    const MetricSnapshot* find(const std::string& name) const;
};

/**
 * Owner of one run's metrics. counter()/gauge()/histogram() return a
 * reference that stays valid for the registry's lifetime; callers
 * cache it and never touch the registry again on the hot path.
 * Registering the same name twice returns the existing metric (the
 * kinds must agree); gaugeFn() instead registers a probe evaluated
 * lazily at every snapshot — the way to expose state that lives in
 * the instrumented component (weight magnitudes, accuracy ratios).
 */
class MetricsRegistry
{
  public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name,
                         std::vector<std::int64_t> bounds);
    void gaugeFn(const std::string& name, std::function<double()> fn);

    Snapshot snapshot() const;

  private:
    struct Entry
    {
        MetricSnapshot::Kind kind = MetricSnapshot::Kind::Counter;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::function<double()> fn; //!< gauge probe (may be empty)
    };

    std::map<std::string, Entry> entries_; //!< name-sorted
};

} // namespace mrp::telemetry

#endif // MRP_TELEMETRY_METRICS_HPP
