/**
 * @file
 * Serialization of RunTelemetry: a JSON metrics object, flat CSV
 * rows, and Chrome trace_event timelines.
 *
 * All output is deterministic — metrics are name-sorted by the
 * registry and doubles use the shared shortest-round-trip formatter —
 * so reports embedding these fragments stay byte-identical at any
 * worker count.
 *
 * Metrics JSON object (embedded per run under "metrics"):
 *   { "accesses": N, "epochAccesses": N, "epochs": N,
 *     "counters": { "name": N, ... },
 *     "gauges": { "name": X, ... },
 *     "histograms": { "name": { "bounds": [..], "counts": [..],
 *                               "overflow": N, "total": N,
 *                               "sum": N }, ... } }
 *
 * Trace events follow the Chrome trace_event "JSON object format":
 * one complete event ("ph": "X") per epoch per component, where a
 * component is the first dot-separated segment of a metric name
 * ("llc", "mpppb", "predictor", "prefetch"). ts/dur count LLC
 * accesses (rendered as microseconds); args carry per-epoch deltas
 * for counters and histogram totals and point values for gauges.
 */

#ifndef MRP_TELEMETRY_EXPORT_HPP
#define MRP_TELEMETRY_EXPORT_HPP

#include <string>
#include <vector>

#include "telemetry/session.hpp"
#include "util/json_reader.hpp"

namespace mrp::telemetry {

/**
 * The "metrics" JSON object for one run. @p indent prefixes every
 * line after the first (the caller places the first line).
 */
std::string metricsJson(const RunTelemetry& t, const std::string& indent);

/**
 * Just the counters/gauges/histograms sections of a snapshot as one
 * JSON object — the wire form a worker ships to the FleetCollector.
 * Same indent convention as metricsJson.
 */
std::string snapshotJson(const Snapshot& s, const std::string& indent);

/**
 * Inverse of snapshotJson. All three sections must be present (both
 * writers always emit them); anything malformed — wrong section
 * types, non-numeric values, bounds/counts length mismatch — throws
 * FatalError(ErrorCode::CorruptInput). Extra keys beside the sections
 * are ignored, so this also reads the object metricsJson produces.
 */
Snapshot snapshotFromJson(const json::Value& v,
                          const std::string& what);

/**
 * Inverse of metricsJson. The per-epoch snapshots are not serialized
 * (only their count is), so the returned RunTelemetry carries
 * `epochs.size()` empty epoch samples — enough for metricsJson to
 * round-trip byte-identically. Malformed input throws
 * FatalError(ErrorCode::CorruptInput).
 */
RunTelemetry telemetryFromJson(const json::Value& v,
                               const std::string& what);

/**
 * Merge @p from into @p into — the fleet aggregation semantics:
 * counters add, histograms add bucket-wise (the bounds must be
 * identical, else FatalError(ErrorCode::CorruptInput) — histograms
 * with different ladders have no meaningful sum), and gauges keep the
 * maximum (a fleet-level high-water; point-in-time values from
 * different processes have no meaningful sum). A name present in only
 * one side is kept as-is; the same name with different kinds is
 * corrupt input. Commutative and associative, so a fold over worker
 * snapshots is order-independent.
 */
void mergeInto(Snapshot& into, const Snapshot& from);

/**
 * Flat `metric,value` rows (no index column, no newlines) for CSV
 * embedding: counters and gauges one row each, histograms flattened
 * to `<name>.le.<bound>`, `<name>.overflow`, `<name>.total`,
 * `<name>.sum`.
 */
std::vector<std::string> metricsCsvRows(const RunTelemetry& t);

/**
 * Comma-joined trace events (no enclosing brackets) for one run:
 * a process_name metadata event plus one complete event per epoch
 * per component, all with the given @p pid and @p processName.
 */
std::string traceEvents(const RunTelemetry& t, unsigned pid,
                        const std::string& processName);

/** A complete single-run trace document loadable in Perfetto. */
std::string traceEventsJson(const RunTelemetry& t,
                            const std::string& processName);

} // namespace mrp::telemetry

#endif // MRP_TELEMETRY_EXPORT_HPP
