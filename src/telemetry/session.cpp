#include "telemetry/session.hpp"

#include "util/logging.hpp"

namespace mrp::telemetry {

ReuseDistanceTracker::ReuseDistanceTracker(MetricsRegistry& registry)
    : distance_(&registry.histogram("llc.reuse_distance",
                                    powerOfTwoBounds(20))),
      cold_(&registry.counter("llc.reuse.cold_accesses"))
{
}

void
ReuseDistanceTracker::observe(std::uint64_t blockKey)
{
    const std::uint64_t d = counter_.observe(blockKey);
    if (d == stats::ReuseDistanceCounter::kCold) {
        cold_->add();
        return;
    }
    distance_->record(static_cast<std::int64_t>(d));
}

Session::Session(const TelemetryConfig& cfg)
    : cfg_(cfg), reuse_(registry_)
{
    fatalIf(cfg_.epochAccesses == 0, ErrorCode::Config,
            "telemetry epoch interval must be positive");
}

void
Session::closeEpoch()
{
    EpochSample s;
    s.index = epochs_.size();
    s.accesses = accesses_;
    s.snapshot = registry_.snapshot();
    epochs_.push_back(std::move(s));
}

std::shared_ptr<const RunTelemetry>
Session::finish()
{
    // Trailing partial epoch, so short runs still get a timeline.
    if (accesses_ > epochs_.size() * cfg_.epochAccesses)
        closeEpoch();

    auto out = std::make_shared<RunTelemetry>();
    out->epochAccesses = cfg_.epochAccesses;
    out->accesses = accesses_;
    out->finalSnapshot = registry_.snapshot();
    out->epochs = std::move(epochs_);
    return out;
}

} // namespace mrp::telemetry
