#include "telemetry/export.hpp"

#include <algorithm>
#include <map>

#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace mrp::telemetry {

namespace {

/** First dot-separated segment of a metric name. */
std::string
componentOf(const std::string& name)
{
    const auto dot = name.find('.');
    return dot == std::string::npos ? name : name.substr(0, dot);
}

/** Metric name with its component prefix stripped. */
std::string
leafOf(const std::string& name)
{
    const auto dot = name.find('.');
    return dot == std::string::npos ? name : name.substr(dot + 1);
}

void
appendHistogramJson(std::string& out, const HistogramSnapshot& h)
{
    out += "{\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(h.counts[i]);
    }
    out += "], \"overflow\": " + std::to_string(h.overflow);
    out += ", \"total\": " + std::to_string(h.total);
    out += ", \"sum\": " + std::to_string(h.sum) + "}";
}

/** One `"section": { ... }` of name->value lines. */
template <typename Pred, typename Emit>
void
appendSection(std::string& out, const Snapshot& snap,
              const std::string& section, const std::string& indent,
              bool& first_section, Pred pred, Emit emit)
{
    if (!first_section)
        out += ",\n";
    first_section = false;
    out += indent + "  \"" + section + "\": {";
    bool first = true;
    for (const auto& m : snap.metrics) {
        if (!pred(m))
            continue;
        out += first ? "\n" : ",\n";
        first = false;
        out += indent + "    " + json::str(m.name) + ": ";
        emit(out, m);
    }
    if (!first)
        out += "\n" + indent + "  ";
    out += "}";
}

/** The three counters/gauges/histograms sections, shared between
 * metricsJson and snapshotJson. */
void
appendSnapshotSections(std::string& out, const Snapshot& snap,
                       const std::string& indent, bool& first_section)
{
    using Kind = MetricSnapshot::Kind;
    appendSection(
        out, snap, "counters", indent, first_section,
        [](const MetricSnapshot& m) { return m.kind == Kind::Counter; },
        [](std::string& o, const MetricSnapshot& m) {
            o += std::to_string(m.counter);
        });
    appendSection(
        out, snap, "gauges", indent, first_section,
        [](const MetricSnapshot& m) { return m.kind == Kind::Gauge; },
        [](std::string& o, const MetricSnapshot& m) {
            o += json::formatDouble(m.gauge);
        });
    appendSection(
        out, snap, "histograms", indent, first_section,
        [](const MetricSnapshot& m) {
            return m.kind == Kind::Histogram;
        },
        [](std::string& o, const MetricSnapshot& m) {
            appendHistogramJson(o, m.histogram);
        });
}

} // namespace

std::string
metricsJson(const RunTelemetry& t, const std::string& indent)
{
    std::string out = "{\n";
    out += indent + "  \"accesses\": " + std::to_string(t.accesses) +
           ",\n";
    out += indent +
           "  \"epochAccesses\": " + std::to_string(t.epochAccesses) +
           ",\n";
    out += indent +
           "  \"epochs\": " + std::to_string(t.epochs.size());
    // The scalar header is already emitted, so every section —
    // including the first — needs the separating comma.
    bool first_section = false;
    appendSnapshotSections(out, t.finalSnapshot, indent,
                           first_section);
    out += "\n" + indent + "}";
    return out;
}

std::string
snapshotJson(const Snapshot& s, const std::string& indent)
{
    std::string out = "{\n";
    bool first_section = true;
    appendSnapshotSections(out, s, indent, first_section);
    out += "\n" + indent + "}";
    return out;
}

std::vector<std::string>
metricsCsvRows(const RunTelemetry& t)
{
    using Kind = MetricSnapshot::Kind;
    std::vector<std::string> rows;
    for (const auto& m : t.finalSnapshot.metrics) {
        switch (m.kind) {
          case Kind::Counter:
            rows.push_back(m.name + "," + std::to_string(m.counter));
            break;
          case Kind::Gauge:
            rows.push_back(m.name + "," + json::formatDouble(m.gauge));
            break;
          case Kind::Histogram: {
            const auto& h = m.histogram;
            for (std::size_t i = 0; i < h.bounds.size(); ++i)
                rows.push_back(m.name + ".le." +
                               std::to_string(h.bounds[i]) + "," +
                               std::to_string(h.counts[i]));
            rows.push_back(m.name + ".overflow," +
                           std::to_string(h.overflow));
            rows.push_back(m.name + ".total," +
                           std::to_string(h.total));
            rows.push_back(m.name + ".sum," + std::to_string(h.sum));
            break;
          }
        }
    }
    return rows;
}

namespace {

/** args of one component's epoch event: deltas for monotonic values,
 * point values for gauges. */
std::string
epochArgs(const std::string& component, const Snapshot& cur,
          const Snapshot* prev)
{
    using Kind = MetricSnapshot::Kind;
    std::string out = "{";
    bool first = true;
    const auto add = [&](const std::string& key,
                         const std::string& value) {
        if (!first)
            out += ", ";
        first = false;
        out += json::str(key) + ": " + value;
    };
    for (const auto& m : cur.metrics) {
        if (componentOf(m.name) != component)
            continue;
        const MetricSnapshot* p = prev ? prev->find(m.name) : nullptr;
        switch (m.kind) {
          case Kind::Counter:
            add(leafOf(m.name),
                std::to_string(m.counter - (p ? p->counter : 0)));
            break;
          case Kind::Gauge:
            add(leafOf(m.name), json::formatDouble(m.gauge));
            break;
          case Kind::Histogram: {
            const std::uint64_t prev_total =
                p ? p->histogram.total : 0;
            const std::int64_t prev_sum = p ? p->histogram.sum : 0;
            add(leafOf(m.name) + ".total",
                std::to_string(m.histogram.total - prev_total));
            add(leafOf(m.name) + ".sum",
                std::to_string(m.histogram.sum - prev_sum));
            break;
          }
        }
    }
    out += "}";
    return out;
}

} // namespace

std::string
traceEvents(const RunTelemetry& t, unsigned pid,
            const std::string& processName)
{
    // Components in name order (the snapshot is name-sorted already).
    std::map<std::string, unsigned> tids;
    for (const auto& m : t.finalSnapshot.metrics) {
        const std::string c = componentOf(m.name);
        if (!tids.count(c))
            tids.emplace(c, static_cast<unsigned>(tids.size()) + 1);
    }

    std::string out = "{\"name\": \"process_name\", \"ph\": \"M\", "
                      "\"pid\": " +
                      std::to_string(pid) +
                      ", \"tid\": 0, \"args\": {\"name\": " +
                      json::str(processName) + "}}";
    for (const auto& [component, tid] : tids)
        out += ",\n{\"name\": \"thread_name\", \"ph\": \"M\", "
               "\"pid\": " +
               std::to_string(pid) +
               ", \"tid\": " + std::to_string(tid) +
               ", \"args\": {\"name\": " + json::str(component) + "}}";

    for (std::size_t e = 0; e < t.epochs.size(); ++e) {
        const std::uint64_t ts =
            e == 0 ? 0 : t.epochs[e - 1].accesses;
        const std::uint64_t dur = t.epochs[e].accesses - ts;
        const Snapshot* prev =
            e == 0 ? nullptr : &t.epochs[e - 1].snapshot;
        for (const auto& [component, tid] : tids) {
            out += ",\n{\"name\": " + json::str(component) +
                   ", \"cat\": \"mrp\", \"ph\": \"X\", \"pid\": " +
                   std::to_string(pid) +
                   ", \"tid\": " + std::to_string(tid) +
                   ", \"ts\": " + std::to_string(ts) +
                   ", \"dur\": " + std::to_string(dur) +
                   ", \"args\": " +
                   epochArgs(component, t.epochs[e].snapshot, prev) +
                   "}";
        }
    }
    return out;
}

std::string
traceEventsJson(const RunTelemetry& t, const std::string& processName)
{
    return "{\"traceEvents\": [\n" + traceEvents(t, 0, processName) +
           "\n], \"displayTimeUnit\": \"ms\"}\n";
}

// --- read side ------------------------------------------------------

namespace {

const json::Value&
reqSection(const json::Value& v, std::string_view key,
           const std::string& what)
{
    return v.require(key, json::Value::Type::Object, what);
}

double
numberOf(const json::Value& v, const std::string& name,
         const std::string& what)
{
    fatalIf(!v.isNumber(), ErrorCode::CorruptInput,
            what + ": \"" + name + "\" must be a number");
    return v.number;
}

HistogramSnapshot
histogramFromJson(const json::Value& v, const std::string& name,
                  const std::string& what)
{
    fatalIf(!v.isObject(), ErrorCode::CorruptInput,
            what + ": histogram \"" + name + "\" must be an object");
    HistogramSnapshot h;
    for (const auto& b :
         v.require("bounds", json::Value::Type::Array, what).array)
        h.bounds.push_back(static_cast<std::int64_t>(
            numberOf(b, name + ".bounds", what)));
    for (const auto& c :
         v.require("counts", json::Value::Type::Array, what).array)
        h.counts.push_back(static_cast<std::uint64_t>(
            numberOf(c, name + ".counts", what)));
    fatalIf(h.bounds.size() != h.counts.size(),
            ErrorCode::CorruptInput,
            what + ": histogram \"" + name +
                "\" bounds/counts length mismatch");
    h.overflow =
        v.require("overflow", json::Value::Type::Number, what)
            .asU64();
    h.total =
        v.require("total", json::Value::Type::Number, what).asU64();
    h.sum = static_cast<std::int64_t>(
        v.require("sum", json::Value::Type::Number, what).number);
    return h;
}

} // namespace

Snapshot
snapshotFromJson(const json::Value& v, const std::string& what)
{
    fatalIf(!v.isObject(), ErrorCode::CorruptInput,
            what + ": snapshot must be a JSON object");
    Snapshot s;
    for (const auto& [name, val] :
         reqSection(v, "counters", what).members) {
        MetricSnapshot m;
        m.name = name;
        m.kind = MetricSnapshot::Kind::Counter;
        m.counter =
            static_cast<std::uint64_t>(numberOf(val, name, what));
        s.metrics.push_back(std::move(m));
    }
    for (const auto& [name, val] :
         reqSection(v, "gauges", what).members) {
        MetricSnapshot m;
        m.name = name;
        m.kind = MetricSnapshot::Kind::Gauge;
        m.gauge = numberOf(val, name, what);
        s.metrics.push_back(std::move(m));
    }
    for (const auto& [name, val] :
         reqSection(v, "histograms", what).members) {
        MetricSnapshot m;
        m.name = name;
        m.kind = MetricSnapshot::Kind::Histogram;
        m.histogram = histogramFromJson(val, name, what);
        s.metrics.push_back(std::move(m));
    }
    std::sort(s.metrics.begin(), s.metrics.end(),
              [](const MetricSnapshot& a, const MetricSnapshot& b) {
                  return a.name < b.name;
              });
    for (std::size_t i = 1; i < s.metrics.size(); ++i)
        fatalIf(s.metrics[i - 1].name == s.metrics[i].name,
                ErrorCode::CorruptInput,
                what + ": duplicate metric name \"" +
                    s.metrics[i].name + "\"");
    return s;
}

RunTelemetry
telemetryFromJson(const json::Value& v, const std::string& what)
{
    fatalIf(!v.isObject(), ErrorCode::CorruptInput,
            what + ": metrics document must be a JSON object");
    RunTelemetry t;
    t.accesses =
        v.require("accesses", json::Value::Type::Number, what)
            .asU64();
    t.epochAccesses =
        v.require("epochAccesses", json::Value::Type::Number, what)
            .asU64();
    t.epochs.resize(
        v.require("epochs", json::Value::Type::Number, what).asU64());
    t.finalSnapshot = snapshotFromJson(v, what);
    return t;
}

void
mergeInto(Snapshot& into, const Snapshot& from)
{
    using Kind = MetricSnapshot::Kind;
    for (const auto& m : from.metrics) {
        const auto it = std::lower_bound(
            into.metrics.begin(), into.metrics.end(), m.name,
            [](const MetricSnapshot& a, const std::string& name) {
                return a.name < name;
            });
        if (it == into.metrics.end() || it->name != m.name) {
            into.metrics.insert(it, m);
            continue;
        }
        fatalIf(it->kind != m.kind, ErrorCode::CorruptInput,
                "snapshot merge: metric \"" + m.name +
                    "\" has conflicting kinds");
        switch (m.kind) {
          case Kind::Counter:
            it->counter += m.counter;
            break;
          case Kind::Gauge:
            it->gauge = std::max(it->gauge, m.gauge);
            break;
          case Kind::Histogram: {
            fatalIf(it->histogram.bounds != m.histogram.bounds,
                    ErrorCode::CorruptInput,
                    "snapshot merge: histogram \"" + m.name +
                        "\" bounds differ");
            for (std::size_t i = 0; i < m.histogram.counts.size();
                 ++i)
                it->histogram.counts[i] += m.histogram.counts[i];
            it->histogram.overflow += m.histogram.overflow;
            it->histogram.total += m.histogram.total;
            it->histogram.sum += m.histogram.sum;
            break;
          }
        }
    }
}

} // namespace mrp::telemetry
