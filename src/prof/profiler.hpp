/**
 * @file
 * Self-profiling for the simulator: hierarchical scoped phase timers
 * plus per-run host-resource capture (wall/user/sys time, RSS
 * high-water).
 *
 * Design constraints, in priority order (deliberately the same bar as
 * mrp_telemetry):
 *  - Near-zero cost when detached: MRP_PROF_SCOPE reduces to one
 *    thread-local pointer load and a branch when no Profiler is
 *    attached to the current thread. Reports produced without a
 *    profiler are byte-identical to a build without instrumentation.
 *  - Cheap when attached: scope enter/exit is an array-indexed child
 *    lookup (call sites are registered once and get dense integer
 *    ids) plus a few integer ops. Hot sites (MRP_PROF_SCOPE_HOT, the
 *    per-access ones) read the TSC only on a sampled subset of
 *    entries and scale: counts stay exact, times are estimates from
 *    the sampled mean. Coarse sites time every entry exactly. No
 *    allocation after a phase's first visit, no locks, no atomics.
 *  - One profiler per run, one run per thread: the parallel runner
 *    parallelizes *across* runs, so each worker thread attaches its
 *    own Profiler and the trees never share state.
 *
 * Lifecycle: construct a Profiler on the run's thread, attach it with
 * prof::Attach (RAII), execute the run, then finish() into an
 * immutable ProfileReport. Nested MRP_PROF_SCOPEs build an
 * inclusive-time tree; exclusive times are derived at finish() as
 * inclusive minus the sum of child inclusives.
 */

#ifndef MRP_PROF_PROFILER_HPP
#define MRP_PROF_PROFILER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "prof/clock.hpp"

namespace mrp::prof {

/** Dense id of one MRP_PROF_SCOPE call site (process-wide). */
using SiteId = std::uint32_t;

/**
 * Sampling period of MRP_PROF_SCOPE_HOT sites: the TSC is read on the
 * first entry and then every kHotSamplePeriod-th one. Prime, so the
 * sample stride cannot alias with the power-of-two periodicities the
 * synthetic workloads are built from. A TSC read costs ~20 ns on a
 * virtualized host — reading it on every one of the millions of
 * per-access scope entries would dominate the very times reported.
 */
inline constexpr std::uint32_t kHotSamplePeriod = 61;

/**
 * Register a scope call site and return its id. Called once per site
 * through the macro's function-local static; thread-safe. @p label
 * must be a string literal (the registry stores the pointer).
 */
SiteId registerSite(const char* label);

/** Number of registered sites (test/introspection aid). */
std::size_t siteCount();

/** One phase of the final report tree. */
struct PhaseStat
{
    std::string label;
    std::uint64_t count = 0;         //!< scope entries (always exact)
    double inclusiveSeconds = 0.0;   //!< self + children
    double exclusiveSeconds = 0.0;   //!< inclusive - Σ child inclusive
    std::vector<PhaseStat> children; //!< label-sorted

    /** Direct child by label, or null. */
    const PhaseStat* child(std::string_view name) const;
};

/** Everything finish() captures about one profiled run. */
struct ProfileReport
{
    /** Phase tree root; label "run", inclusive = attach-to-finish
     * wall time. */
    PhaseStat root;

    double wallSeconds = 0.0;
    double userSeconds = 0.0; //!< this thread's user CPU time
    double sysSeconds = 0.0;  //!< this thread's system CPU time
    long maxRssKb = 0;        //!< process RSS high-water (kilobytes)

    /** Throughput basis, filled by the caller (the profiler cannot
     * know what was simulated); see setThroughput(). */
    std::uint64_t instructions = 0;
    std::uint64_t llcAccesses = 0;
    double instsPerSecond = 0.0;
    double accessesPerSecond = 0.0;

    /** Record what the run simulated and derive the rates. */
    void setThroughput(std::uint64_t insts, std::uint64_t accesses);
};

/** Phase anywhere in @p root's tree by label (preorder), or null. */
const PhaseStat* findPhase(const PhaseStat& root, std::string_view label);

/**
 * Fraction of a report's "measure" phase covered by its direct
 * `llc.*` children — the "is the hot path attributable?" number the
 * bench harness prints. Sums over every "measure" node (Belady MIN
 * runs have two passes). Returns 0 when no measure phase was timed.
 */
double llcCoverage(const PhaseStat& root);

class Profiler;

namespace detail {
/** The thread's attached profiler (managed by Attach). */
extern thread_local Profiler* tlsProfiler;
} // namespace detail

class Profiler
{
  public:
    Profiler();
    ~Profiler();
    Profiler(const Profiler&) = delete;
    Profiler& operator=(const Profiler&) = delete;

    /** Profiler attached to the current thread, or null. */
    static Profiler* current() { return detail::tlsProfiler; }

    /**
     * Seal the profile. Must be called on the attaching thread with
     * every scope closed (panics otherwise — an open scope would make
     * a child's time exceed its never-closed parent's).
     */
    ProfileReport finish();

    // ---- hot path (called by Scope; not user API) ----

    struct Node
    {
        const char* label = nullptr;
        std::uint64_t ticks = 0; //!< inclusive over *timed* entries
        std::uint64_t count = 0; //!< all entries
        std::uint64_t timed = 0; //!< entries that read the TSC
        std::uint32_t period = 1;    //!< time every period-th entry
        std::uint32_t countdown = 1; //!< entries until the next sample
        /** Children indexed by SiteId (sparse; sites are few). */
        std::vector<std::unique_ptr<Node>> children;
    };

    /** Descend into @p site's node; returns the previous position. */
    Node*
    enter(SiteId site, const char* label, std::uint32_t period)
    {
        Node* parent = current_;
        if (site >= parent->children.size())
            parent->children.resize(site + 1);
        auto& slot = parent->children[site];
        if (!slot) {
            slot = std::make_unique<Node>();
            slot->label = label;
            slot->period = period;
        }
        current_ = slot.get();
        return parent;
    }

    Node* currentNode() { return current_; }

    void
    leaveTimed(Node* parent, std::uint64_t start_tick)
    {
        Node* n = current_;
        n->ticks += tick() - start_tick;
        ++n->timed;
        ++n->count;
        current_ = parent;
    }

    void
    leaveFast(Node* parent)
    {
        ++current_->count;
        current_ = parent;
    }

  private:
    friend class Attach;

    Node root_;
    Node* current_;
    std::uint64_t startTick_;
    std::uint64_t tickCost_; //!< ticks one timed entry spends on rdtsc
    Stopwatch wall_;
    double startUser_ = 0.0;
    double startSys_ = 0.0;
};

/**
 * RAII attachment of a Profiler to the current thread. Saves and
 * restores any previously attached profiler, so attachments nest
 * (inner run profiled separately from an outer harness profile).
 */
class Attach
{
  public:
    explicit Attach(Profiler& p);
    ~Attach();
    Attach(const Attach&) = delete;
    Attach& operator=(const Attach&) = delete;

  private:
    Profiler* prev_;
};

/** RAII phase scope; use through MRP_PROF_SCOPE[_HOT]. */
class Scope
{
  public:
    Scope(SiteId site, const char* label, std::uint32_t period)
    {
        prof_ = Profiler::current();
        if (!prof_)
            return;
        parent_ = prof_->enter(site, label, period);
        // The sampling decision is made at entry so the (expensive)
        // TSC read is skipped entirely on unsampled entries; a node's
        // first entry is always timed.
        Profiler::Node* n = prof_->currentNode();
        if (--n->countdown == 0) {
            n->countdown = n->period;
            start_ = tick();
        }
    }

    ~Scope()
    {
        if (!prof_)
            return;
        if (start_ != 0)
            prof_->leaveTimed(parent_, start_);
        else
            prof_->leaveFast(parent_);
    }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

  private:
    Profiler* prof_;
    Profiler::Node* parent_ = nullptr;
    std::uint64_t start_ = 0; //!< 0 = entry not sampled
};

} // namespace mrp::prof

#define MRP_PROF_CONCAT2(a, b) a##b
#define MRP_PROF_CONCAT(a, b) MRP_PROF_CONCAT2(a, b)

/**
 * Time the rest of the enclosing block as phase @p label (a string
 * literal, dot-hierarchical by convention: "llc.predict"). Nesting
 * scopes nests phases. No-op unless a Profiler is attached to the
 * current thread; define MRP_PROF_DISABLED to compile sites out
 * entirely.
 *
 * MRP_PROF_SCOPE times every entry exactly — use it for coarse
 * phases (windows, passes, decode). MRP_PROF_SCOPE_HOT counts every
 * entry but reads the TSC only every kHotSamplePeriod-th one — use
 * it for sites entered once per simulated access, where exact timing
 * would cost more than the work being timed.
 */
#ifdef MRP_PROF_DISABLED
#define MRP_PROF_SCOPE(label) ((void)0)
#define MRP_PROF_SCOPE_HOT(label) ((void)0)
#else
#define MRP_PROF_SCOPE_P(label, period)                                \
    static const ::mrp::prof::SiteId MRP_PROF_CONCAT(                  \
        mrp_prof_site_, __LINE__) = ::mrp::prof::registerSite(label);  \
    const ::mrp::prof::Scope MRP_PROF_CONCAT(mrp_prof_scope_,          \
                                             __LINE__)(                \
        MRP_PROF_CONCAT(mrp_prof_site_, __LINE__), label, period)
#define MRP_PROF_SCOPE(label) MRP_PROF_SCOPE_P(label, 1)
#define MRP_PROF_SCOPE_HOT(label)                                      \
    MRP_PROF_SCOPE_P(label, ::mrp::prof::kHotSamplePeriod)
#endif

#endif // MRP_PROF_PROFILER_HPP
