/**
 * @file
 * The profiler's timestamp source.
 *
 * Phase scopes fire on the simulator's hot path (every LLC access in
 * the worst case), so the per-scope cost must be a register read, not
 * a syscall. On x86-64 we read the invariant TSC directly (~10ns,
 * vDSO-free); elsewhere we fall back to steady_clock. Ticks are NOT
 * seconds: the Profiler calibrates the tick period over its own
 * lifetime (wall-clock delta / tick delta), so no upfront calibration
 * spin is ever needed and frequency differences between machines
 * cancel out of every report.
 */

#ifndef MRP_PROF_CLOCK_HPP
#define MRP_PROF_CLOCK_HPP

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace mrp::prof {

/** Raw monotonic timestamp in unspecified units ("ticks"). */
inline std::uint64_t
tick()
{
#if defined(__x86_64__) || defined(_M_X64)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/**
 * Wall-clock stopwatch for coarse (per-run, per-batch) intervals —
 * the one shared definition replacing the ad-hoc steady_clock
 * arithmetic that used to be duplicated across the runner and the
 * benches.
 */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction (or the last reset). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    void reset() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** count / seconds, guarded against empty intervals. */
inline double
ratePerSecond(std::uint64_t count, double seconds)
{
    return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

} // namespace mrp::prof

#endif // MRP_PROF_CLOCK_HPP
