/**
 * @file
 * Serialization of profiles into the canonical BENCH_<name>.json
 * artifact and into Chrome trace_event form.
 *
 * BENCH documents are the unit of benchmark exchange: the bench
 * harness writes them, CI uploads them, and tools/bench_guard diffs a
 * fresh one against a committed baseline. The schema is versioned
 * ("mrp-bench-v1") so the guard can reject documents it does not
 * understand instead of silently comparing apples to oranges.
 */

#ifndef MRP_PROF_EXPORT_HPP
#define MRP_PROF_EXPORT_HPP

#include <string>
#include <vector>

#include "prof/profiler.hpp"
#include "util/json_reader.hpp"

namespace mrp::prof {

/** Host identity stamped into every BENCH document. */
struct MachineInfo
{
    std::string os;       //!< uname sysname, e.g. "Linux"
    std::string release;  //!< uname release
    std::string arch;     //!< uname machine, e.g. "x86_64"
    std::string hostname;
    unsigned cpus = 0;    //!< hardware_concurrency
};

/** Capture the current host's identity. */
MachineInfo machineInfo();

/**
 * Git SHA of the working tree: $MRP_GIT_SHA if set (CI sets it so
 * artifacts stay attributable without a .git directory), else
 * `git rev-parse HEAD`, else "unknown".
 */
std::string gitSha();

/** One profiled run inside a BENCH document. */
struct BenchRun
{
    std::string label;     //!< unique within the document
    std::string benchmark; //!< trace/workload name
    std::string policy;
    ProfileReport profile;
};

/**
 * Render a complete BENCH_<name>.json document. Deterministic for a
 * given input (machine/sha are inputs, not re-captured), pretty enough
 * to read, stable enough to diff.
 */
std::string benchJson(const std::string& name,
                      const std::vector<BenchRun>& runs,
                      const MachineInfo& machine,
                      const std::string& sha);

/**
 * One phase tree as a JSON object — the same
 * `{label, count, inclusiveSeconds, exclusiveSeconds, children}`
 * shape benchJson embeds under "phases". @p indent is the column the
 * object starts at (children indent four further).
 */
std::string phaseTreeJson(const PhaseStat& p, int indent);

/**
 * Inverse of phaseTreeJson (and of the "phases" object inside a
 * BENCH document). Malformed input — missing keys, wrong types at
 * any depth — throws FatalError(ErrorCode::CorruptInput). The
 * shortest-round-trip double formatter makes
 * phaseTreeJson(phaseTreeFromJson(x)) byte-identical to x.
 */
PhaseStat phaseTreeFromJson(const json::Value& v,
                            const std::string& what);

/**
 * Append the phase tree of @p run as Chrome trace_event "X" events to
 * @p events (one JSON object string each, no trailing commas).
 * Timestamps are synthesized from the tree (a phase starts where its
 * prior siblings end), so the flame is an *aggregate* profile laid out
 * as a timeline, not a faithful event order. Events are emitted under
 * process id @p pid / thread 0 with a metadata record naming the
 * process "prof:<benchmark>/<policy>", which keeps profile flames
 * separate from the telemetry processes in a combined trace document.
 */
void appendTraceEvents(const BenchRun& run, int pid,
                       std::vector<std::string>* events);

} // namespace mrp::prof

#endif // MRP_PROF_EXPORT_HPP
