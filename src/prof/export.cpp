#include "prof/export.hpp"

#include <cstdio>
#include <cstdlib>

#include <sys/utsname.h>
#include <unistd.h>

#include <thread>

#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace mrp::prof {

namespace {

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

void
phaseJson(const PhaseStat& p, int indent, std::string* out)
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const std::string pad2(static_cast<std::size_t>(indent) + 2, ' ');
    *out += "{\n";
    *out += pad2 + json::key("label") + json::str(p.label) + ",\n";
    *out += pad2 + json::key("count") + u64(p.count) + ",\n";
    *out += pad2 + json::key("inclusiveSeconds") +
            json::formatDouble(p.inclusiveSeconds) + ",\n";
    *out += pad2 + json::key("exclusiveSeconds") +
            json::formatDouble(p.exclusiveSeconds) + ",\n";
    *out += pad2 + json::key("children") + "[";
    for (std::size_t i = 0; i < p.children.size(); ++i) {
        *out += i == 0 ? "\n" : ",\n";
        *out += pad2 + "  ";
        phaseJson(p.children[i], indent + 4, out);
    }
    if (!p.children.empty())
        *out += "\n" + pad2;
    *out += "]\n";
    *out += pad + "}";
}

} // namespace

MachineInfo
machineInfo()
{
    MachineInfo m;
    utsname u{};
    if (::uname(&u) == 0) {
        m.os = u.sysname;
        m.release = u.release;
        m.arch = u.machine;
    }
    char host[256] = {0};
    if (::gethostname(host, sizeof(host) - 1) == 0)
        m.hostname = host;
    m.cpus = std::thread::hardware_concurrency();
    return m;
}

std::string
gitSha()
{
    if (const char* env = std::getenv("MRP_GIT_SHA"); env && *env)
        return env;
    std::string sha;
    if (FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[128];
        if (std::fgets(buf, sizeof(buf), pipe))
            sha = buf;
        ::pclose(pipe);
    }
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    return sha.empty() ? "unknown" : sha;
}

std::string
phaseTreeJson(const PhaseStat& p, int indent)
{
    std::string out;
    phaseJson(p, indent, &out);
    return out;
}

PhaseStat
phaseTreeFromJson(const json::Value& v, const std::string& what)
{
    fatalIf(!v.isObject(), ErrorCode::CorruptInput,
            what + ": phase must be a JSON object");
    PhaseStat p;
    p.label =
        v.require("label", json::Value::Type::String, what).string;
    p.count =
        v.require("count", json::Value::Type::Number, what).asU64();
    p.inclusiveSeconds =
        v.require("inclusiveSeconds", json::Value::Type::Number, what)
            .number;
    p.exclusiveSeconds =
        v.require("exclusiveSeconds", json::Value::Type::Number, what)
            .number;
    for (const auto& c :
         v.require("children", json::Value::Type::Array, what).array)
        p.children.push_back(phaseTreeFromJson(c, what));
    return p;
}

std::string
benchJson(const std::string& name, const std::vector<BenchRun>& runs,
          const MachineInfo& machine, const std::string& sha)
{
    std::string out = "{\n";
    out += "  " + json::key("schema") + json::str("mrp-bench-v1") + ",\n";
    out += "  " + json::key("name") + json::str(name) + ",\n";
    out += "  " + json::key("gitSha") + json::str(sha) + ",\n";
    out += "  " + json::key("machine") + "{\n";
    out += "    " + json::key("os") + json::str(machine.os) + ",\n";
    out += "    " + json::key("release") + json::str(machine.release) +
           ",\n";
    out += "    " + json::key("arch") + json::str(machine.arch) + ",\n";
    out += "    " + json::key("hostname") + json::str(machine.hostname) +
           ",\n";
    out += "    " + json::key("cpus") + std::to_string(machine.cpus) +
           "\n";
    out += "  },\n";
    out += "  " + json::key("runs") + "[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const BenchRun& r = runs[i];
        const ProfileReport& p = r.profile;
        out += i == 0 ? "\n" : ",\n";
        out += "    {\n";
        out += "      " + json::key("label") + json::str(r.label) + ",\n";
        out += "      " + json::key("benchmark") + json::str(r.benchmark) +
               ",\n";
        out += "      " + json::key("policy") + json::str(r.policy) +
               ",\n";
        out += "      " + json::key("wallSeconds") +
               json::formatDouble(p.wallSeconds) + ",\n";
        out += "      " + json::key("userSeconds") +
               json::formatDouble(p.userSeconds) + ",\n";
        out += "      " + json::key("sysSeconds") +
               json::formatDouble(p.sysSeconds) + ",\n";
        out += "      " + json::key("maxRssKb") +
               std::to_string(p.maxRssKb) + ",\n";
        out += "      " + json::key("instructions") + u64(p.instructions) +
               ",\n";
        out += "      " + json::key("llcAccesses") + u64(p.llcAccesses) +
               ",\n";
        out += "      " + json::key("instsPerSecond") +
               json::formatDouble(p.instsPerSecond) + ",\n";
        out += "      " + json::key("accessesPerSecond") +
               json::formatDouble(p.accessesPerSecond) + ",\n";
        out += "      " + json::key("llcCoverage") +
               json::formatDouble(llcCoverage(p.root)) + ",\n";
        out += "      " + json::key("phases");
        phaseJson(p.root, 6, &out);
        out += "\n    }";
    }
    if (!runs.empty())
        out += "\n  ";
    out += "]\n";
    out += "}\n";
    return out;
}

namespace {

/** Microseconds, formatted as an integer-friendly double. */
std::string
micros(double seconds)
{
    return json::formatDouble(seconds * 1e6);
}

void
appendPhaseEvents(const PhaseStat& p, double start_seconds, int pid,
                  std::vector<std::string>* events)
{
    events->push_back(
        "{\"name\": " + json::str(p.label) +
        ", \"ph\": \"X\", \"pid\": " + std::to_string(pid) +
        ", \"tid\": 0, \"ts\": " + micros(start_seconds) +
        ", \"dur\": " + micros(p.inclusiveSeconds) +
        ", \"args\": {\"count\": " + std::to_string(p.count) + "}}");
    double cursor = start_seconds;
    for (const PhaseStat& c : p.children) {
        appendPhaseEvents(c, cursor, pid, events);
        cursor += c.inclusiveSeconds;
    }
}

} // namespace

void
appendTraceEvents(const BenchRun& run, int pid,
                  std::vector<std::string>* events)
{
    events->push_back(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
        std::to_string(pid) + ", \"tid\": 0, \"args\": {\"name\": " +
        json::str("prof:" + run.benchmark + "/" + run.policy) + "}}");
    appendPhaseEvents(run.profile.root, 0.0, pid, events);
}

} // namespace mrp::prof
