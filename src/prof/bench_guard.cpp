#include "prof/bench_guard.hpp"

#include <cstdio>

#include "util/logging.hpp"

namespace mrp::prof {

namespace {

using json::Value;

const Value&
checkSchema(const Value& doc, const std::string& what)
{
    fatalIf(!doc.isObject(), ErrorCode::CorruptInput,
            what + ": not a JSON object");
    const Value& schema =
        doc.require("schema", Value::Type::String, what);
    fatalIf(schema.string != "mrp-bench-v1", ErrorCode::CorruptInput,
            what + ": unsupported schema \"" + schema.string + "\"");
    return doc.require("runs", Value::Type::Array, what);
}

const Value*
findRun(const Value& runs, const std::string& label)
{
    for (const Value& r : runs.array)
        if (const Value* l = r.get("label");
            l && l->isString() && l->string == label)
            return &r;
    return nullptr;
}

/** Walk baseline phases depth-first, pairing with candidate phases. */
void
comparePhases(const Value& base, const Value* cand,
              const std::string& path, const std::string& run_label,
              const GuardOptions& opts, GuardResult* out)
{
    const std::string label =
        base.require("label", Value::Type::String, "baseline phase")
            .string;
    const std::string here =
        path.empty() ? label : path + "/" + label;

    const double base_incl =
        base.require("inclusiveSeconds", Value::Type::Number,
                     "baseline phase")
            .number;

    if (!cand) {
        if (base_incl >= opts.minSeconds)
            out->findings.push_back({Finding::Kind::Missing, run_label,
                                     here, base_incl, 0.0});
        return;
    }

    const double cand_incl =
        cand->require("inclusiveSeconds", Value::Type::Number,
                      "candidate phase")
            .number;
    if (base_incl >= opts.minSeconds) {
        ++out->metricsCompared;
        if (cand_incl > base_incl * (1.0 + opts.tolerance))
            out->findings.push_back({Finding::Kind::Regression,
                                     run_label, here, base_incl,
                                     cand_incl});
        else if (cand_incl < base_incl * (1.0 - opts.tolerance))
            out->findings.push_back({Finding::Kind::Improvement,
                                     run_label, here, base_incl,
                                     cand_incl});
    }

    const Value* base_children = base.get("children");
    if (!base_children || !base_children->isArray())
        return;
    const Value* cand_children = cand->get("children");
    for (const Value& bc : base_children->array) {
        const Value* match = nullptr;
        if (cand_children && cand_children->isArray()) {
            const Value* bl = bc.get("label");
            for (const Value& cc : cand_children->array) {
                const Value* cl = cc.get("label");
                if (bl && cl && bl->isString() && cl->isString() &&
                    bl->string == cl->string) {
                    match = &cc;
                    break;
                }
            }
        }
        comparePhases(bc, match, here, run_label, opts, out);
    }
}

void
compareRate(const Value& base, const Value& cand, const char* name,
            const std::string& run_label, const GuardOptions& opts,
            GuardResult* out)
{
    const Value* b = base.get(name);
    const Value* c = cand.get(name);
    if (!b || !c || !b->isNumber() || !c->isNumber() ||
        b->number <= 0.0)
        return;
    ++out->metricsCompared;
    // Rates regress by shrinking.
    if (c->number < b->number * (1.0 - opts.tolerance))
        out->findings.push_back({Finding::Kind::Regression, run_label,
                                 name, b->number, c->number});
    else if (c->number > b->number * (1.0 + opts.tolerance))
        out->findings.push_back({Finding::Kind::Improvement, run_label,
                                 name, b->number, c->number});
}

} // namespace

GuardResult
compare(const Value& baseline, const Value& candidate,
        const GuardOptions& opts)
{
    const Value& base_runs = checkSchema(baseline, "baseline BENCH");
    const Value& cand_runs = checkSchema(candidate, "candidate BENCH");

    GuardResult out;
    for (const Value& base_run : base_runs.array) {
        const std::string label =
            base_run.require("label", Value::Type::String,
                             "baseline run")
                .string;
        const Value* cand_run = findRun(cand_runs, label);
        if (!cand_run) {
            out.findings.push_back(
                {Finding::Kind::Missing, label, "run", 0.0, 0.0});
            continue;
        }
        ++out.runsCompared;
        const Value* base_phases = base_run.get("phases");
        const Value* cand_phases = cand_run->get("phases");
        if (base_phases && base_phases->isObject())
            comparePhases(*base_phases, cand_phases, "", label, opts,
                          &out);
        if (opts.checkThroughput) {
            compareRate(base_run, *cand_run, "instsPerSecond", label,
                        opts, &out);
            compareRate(base_run, *cand_run, "accessesPerSecond", label,
                        opts, &out);
        }
    }
    return out;
}

std::string
formatFindings(const GuardResult& result, const GuardOptions& opts)
{
    std::string out;
    char line[512];
    int regressions = 0;
    for (const Finding& f : result.findings) {
        const char* tag = "?";
        switch (f.kind) {
        case Finding::Kind::Regression:
            tag = "REGRESSION";
            ++regressions;
            break;
        case Finding::Kind::Improvement: tag = "improvement"; break;
        case Finding::Kind::Missing:
            tag = "MISSING";
            ++regressions;
            break;
        }
        if (f.kind == Finding::Kind::Missing) {
            std::snprintf(line, sizeof(line), "%-11s %s: %s\n", tag,
                          f.run.c_str(), f.metric.c_str());
        } else {
            const double pct =
                f.baseline > 0.0
                    ? (f.candidate / f.baseline - 1.0) * 100.0
                    : 0.0;
            std::snprintf(line, sizeof(line),
                          "%-11s %s: %s  %.6g -> %.6g  (%+.1f%%)\n",
                          tag, f.run.c_str(), f.metric.c_str(),
                          f.baseline, f.candidate, pct);
        }
        out += line;
    }
    std::snprintf(line, sizeof(line),
                  "%d run(s), %d metric(s) compared at +/-%.0f%% "
                  "tolerance: %s\n",
                  result.runsCompared, result.metricsCompared,
                  opts.tolerance * 100.0,
                  regressions == 0 ? "OK" : "REGRESSED");
    out += line;
    return out;
}

} // namespace mrp::prof
