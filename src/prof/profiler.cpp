#include "prof/profiler.hpp"

#include <algorithm>
#include <mutex>

#include <sys/resource.h>

#include "util/logging.hpp"

namespace mrp::prof {

namespace detail {
thread_local Profiler* tlsProfiler = nullptr;
} // namespace detail

namespace {

using detail::tlsProfiler;

std::mutex siteMutex;
std::vector<const char*> siteLabels;

/** This thread's user/system CPU time in seconds. */
void
threadCpu(double* user, double* sys)
{
    rusage ru{};
#ifdef RUSAGE_THREAD
    ::getrusage(RUSAGE_THREAD, &ru);
#else
    ::getrusage(RUSAGE_SELF, &ru);
#endif
    *user = static_cast<double>(ru.ru_utime.tv_sec) +
            static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    *sys = static_cast<double>(ru.ru_stime.tv_sec) +
           static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
}

long
processMaxRssKb()
{
    rusage ru{};
    ::getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss; // kilobytes on Linux
}

/** Minimum back-to-back TSC read distance: the cost every timed scope
 * entry pays for its own clock reads, compensated out at finish(). */
std::uint64_t
calibrateTickCost()
{
    std::uint64_t best = ~std::uint64_t{0};
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t a = tick();
        const std::uint64_t b = tick();
        if (b - a < best)
            best = b - a;
    }
    return best;
}

/**
 * Convert one node subtree into report form (no merging yet). A
 * sampled (hot) site's inclusive time is estimated from the mean of
 * its timed entries scaled to the full entry count; exactly-timed
 * sites have timed == count and the expression is exact. Each timed
 * entry's own clock-read cost is subtracted so scaling a sampled mean
 * does not multiply timer overhead into the estimate.
 */
PhaseStat
rawStat(const Profiler::Node& node, double tick_period,
        std::uint64_t tick_cost)
{
    PhaseStat s;
    s.label = node.label;
    s.count = node.count;
    const std::uint64_t timer_ticks = node.timed * tick_cost;
    const std::uint64_t ticks =
        node.ticks > timer_ticks ? node.ticks - timer_ticks : 0;
    const double est =
        node.timed > 0 ? static_cast<double>(ticks) *
                             (static_cast<double>(node.count) /
                              static_cast<double>(node.timed))
                       : 0.0;
    s.inclusiveSeconds = est * tick_period;
    for (const auto& child : node.children)
        if (child)
            s.children.push_back(rawStat(*child, tick_period, tick_cost));
    return s;
}

/** Scale a subtree's times by @p f (sampled-estimate reconciliation). */
void
scaleSubtree(PhaseStat& s, double f)
{
    s.inclusiveSeconds *= f;
    s.exclusiveSeconds *= f;
    for (auto& c : s.children)
        scaleSubtree(c, f);
}

/**
 * Merge same-label siblings (two call sites may time the same logical
 * phase — the report speaks in phases, not sites), sort children by
 * label for deterministic export, and derive exclusive times.
 */
void
normalize(PhaseStat& s)
{
    std::sort(s.children.begin(), s.children.end(),
              [](const PhaseStat& a, const PhaseStat& b) {
                  return a.label < b.label;
              });
    for (std::size_t i = 1; i < s.children.size();) {
        if (s.children[i].label != s.children[i - 1].label) {
            ++i;
            continue;
        }
        s.children[i - 1].count += s.children[i].count;
        s.children[i - 1].inclusiveSeconds +=
            s.children[i].inclusiveSeconds;
        for (auto& gc : s.children[i].children)
            s.children[i - 1].children.push_back(std::move(gc));
        s.children.erase(s.children.begin() + static_cast<long>(i));
    }
    double child_sum = 0.0;
    for (auto& c : s.children) {
        normalize(c);
        child_sum += c.inclusiveSeconds;
    }
    // Sampled estimates are unbiased but not exact: children may sum
    // to slightly more than their parent. Reconcile by scaling the
    // children down proportionally so the tree invariants (Σ children
    // ≤ parent inclusive, exclusive ≥ 0) hold by construction.
    if (child_sum > s.inclusiveSeconds && child_sum > 0.0) {
        const double f = s.inclusiveSeconds / child_sum;
        for (auto& c : s.children)
            scaleSubtree(c, f);
        child_sum = s.inclusiveSeconds;
    }
    s.exclusiveSeconds = std::max(0.0, s.inclusiveSeconds - child_sum);
}

} // namespace

SiteId
registerSite(const char* label)
{
    std::lock_guard<std::mutex> lock(siteMutex);
    siteLabels.push_back(label);
    return static_cast<SiteId>(siteLabels.size() - 1);
}

std::size_t
siteCount()
{
    std::lock_guard<std::mutex> lock(siteMutex);
    return siteLabels.size();
}

const PhaseStat*
PhaseStat::child(std::string_view name) const
{
    for (const auto& c : children)
        if (c.label == name)
            return &c;
    return nullptr;
}

void
ProfileReport::setThroughput(std::uint64_t insts, std::uint64_t accesses)
{
    instructions = insts;
    llcAccesses = accesses;
    instsPerSecond = ratePerSecond(insts, wallSeconds);
    accessesPerSecond = ratePerSecond(accesses, wallSeconds);
}

const PhaseStat*
findPhase(const PhaseStat& root, std::string_view label)
{
    if (root.label == label)
        return &root;
    for (const auto& c : root.children)
        if (const PhaseStat* hit = findPhase(c, label))
            return hit;
    return nullptr;
}

double
llcCoverage(const PhaseStat& root)
{
    // Sum over every "measure" node in the tree (preorder walk).
    double measure = 0.0;
    double covered = 0.0;
    const auto walk = [&](const PhaseStat& n, const auto& self) -> void {
        if (n.label == "measure") {
            measure += n.inclusiveSeconds;
            for (const auto& c : n.children)
                if (c.label.rfind("llc.", 0) == 0)
                    covered += c.inclusiveSeconds;
            return; // nothing below measure is a second window
        }
        for (const auto& c : n.children)
            self(c, self);
    };
    walk(root, walk);
    return measure > 0.0 ? covered / measure : 0.0;
}

Profiler::Profiler()
    : current_(&root_), startTick_(tick()),
      tickCost_(calibrateTickCost())
{
    root_.label = "run";
    threadCpu(&startUser_, &startSys_);
}

Profiler::~Profiler()
{
    panicIf(tlsProfiler == this,
            "Profiler destroyed while still attached to this thread");
}

ProfileReport
Profiler::finish()
{
    panicIf(current_ != &root_,
            "Profiler::finish() called inside an open profiling scope");
    const std::uint64_t end_tick = tick();

    ProfileReport r;
    r.wallSeconds = wall_.seconds();
    double user = 0.0, sys = 0.0;
    threadCpu(&user, &sys);
    r.userSeconds = std::max(0.0, user - startUser_);
    r.sysSeconds = std::max(0.0, sys - startSys_);
    r.maxRssKb = processMaxRssKb();

    // Calibrate the tick period over this profiler's own lifetime.
    const std::uint64_t total_ticks = end_tick - startTick_;
    const double tick_period =
        total_ticks > 0
            ? r.wallSeconds / static_cast<double>(total_ticks)
            : 0.0;
    root_.ticks = total_ticks;
    root_.count = 1;
    root_.timed = 1;
    r.root = rawStat(root_, tick_period, tickCost_);
    normalize(r.root);
    return r;
}

Attach::Attach(Profiler& p) : prev_(tlsProfiler)
{
    tlsProfiler = &p;
}

Attach::~Attach()
{
    tlsProfiler = prev_;
}

} // namespace mrp::prof
