/**
 * @file
 * Performance-regression guard over BENCH_*.json documents.
 *
 * compare() diffs a freshly produced candidate document against a
 * committed baseline: runs are matched by label, phases by their path
 * in the tree, and a phase whose inclusive time grew beyond the
 * tolerance — or a throughput rate that shrank beyond it — is a
 * regression. The logic lives here (not in the CLI) so the unit tests
 * can drive it on fixture JSON; tools/bench_guard is a thin main.
 */

#ifndef MRP_PROF_BENCH_GUARD_HPP
#define MRP_PROF_BENCH_GUARD_HPP

#include <string>
#include <vector>

#include "util/json_reader.hpp"

namespace mrp::prof {

struct GuardOptions
{
    /** Relative slack: candidate > baseline * (1 + tolerance) is a
     * regression. Generous by default — phase timers on a shared CI
     * box are noisy. */
    double tolerance = 0.15;

    /** Phases faster than this in the baseline are skipped — their
     * relative noise swamps any signal. */
    double minSeconds = 0.01;

    /** Also guard instsPerSecond / accessesPerSecond (shrinking
     * beyond tolerance regresses). */
    bool checkThroughput = true;
};

struct Finding
{
    enum class Kind {
        Regression,  //!< beyond tolerance in the bad direction
        Improvement, //!< beyond tolerance in the good direction (FYI)
        Missing,     //!< run or phase present in baseline, absent now
    };

    Kind kind = Kind::Regression;
    std::string run;    //!< run label
    std::string metric; //!< phase path ("run/measure/llc.access") or rate name
    double baseline = 0.0;
    double candidate = 0.0;
};

struct GuardResult
{
    std::vector<Finding> findings;
    int runsCompared = 0;
    int metricsCompared = 0;

    bool
    ok() const
    {
        for (const Finding& f : findings)
            if (f.kind != Finding::Kind::Improvement)
                return false;
        return true;
    }
};

/**
 * Diff @p candidate against @p baseline. Both must be parsed
 * "mrp-bench-v1" documents; throws FatalError(CorruptInput) on schema
 * mismatch or malformed structure.
 */
GuardResult compare(const json::Value& baseline,
                    const json::Value& candidate,
                    const GuardOptions& opts);

/** Human-readable one-line-per-finding rendering plus a verdict. */
std::string formatFindings(const GuardResult& result,
                           const GuardOptions& opts);

} // namespace mrp::prof

#endif // MRP_PROF_BENCH_GUARD_HPP
