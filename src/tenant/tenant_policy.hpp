/**
 * @file
 * The way-partitioning LLC policy wrapper. It holds one full inner
 * policy instance per tenant — so predictor/sampler training state is
 * private to each tenant by construction — and confines every tenant's
 * fills to its partition mask. Combined with owner-tagged blocks in
 * PolicyCache (tenants never hit each other's lines), a tenant's
 * hit/miss stream at fixed partition sizes is a pure function of its
 * own access stream: byte-identical whatever the co-runners do.
 */

#ifndef MRP_TENANT_TENANT_POLICY_HPP
#define MRP_TENANT_TENANT_POLICY_HPP

#include <functional>
#include <memory>
#include <vector>

#include "cache/llc_policy.hpp"
#include "tenant/config.hpp"
#include "tenant/partition.hpp"

namespace mrp::tenant {

/**
 * Builds one inner policy instance. Structurally identical to
 * sim::PolicyFactory, declared here so mrp_tenant needs no dependency
 * on the driver layer.
 */
using InnerPolicyFactory =
    std::function<std::unique_ptr<cache::LlcPolicy>(
        const cache::CacheGeometry&, unsigned cores)>;

/** Way-partitioned LLC policy: one inner policy per tenant. */
class TenantPartitionPolicy : public cache::LlcPolicy
{
  public:
    TenantPartitionPolicy(const cache::CacheGeometry& geom,
                          unsigned cores, const TenancyConfig& cfg,
                          const InnerPolicyFactory& inner);

    std::string name() const override;
    void onHit(const cache::AccessInfo& info, std::uint32_t set,
               std::uint32_t way) override;
    void onMiss(const cache::AccessInfo& info, std::uint32_t set) override;
    bool shouldBypass(const cache::AccessInfo& info,
                      std::uint32_t set) override;
    std::uint32_t victimWay(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    std::uint32_t victimWayIn(const cache::AccessInfo& info,
                              std::uint32_t set,
                              cache::WayMask mask) override;
    void onFill(const cache::AccessInfo& info, std::uint32_t set,
                std::uint32_t way) override;
    void onEvict(std::uint32_t set, std::uint32_t way) override;
    cache::WayMask fillWays(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    std::uint32_t tenantOf(const cache::AccessInfo& info) const override;
    void attachTelemetry(telemetry::MetricsRegistry& registry) override;

    /** The live partition map (the QoS controller resizes through it). */
    PartitionMap& partition() { return partition_; }
    const PartitionMap& partition() const { return partition_; }

    /** Tenant @p t's private inner policy (tests/introspection). */
    cache::LlcPolicy& inner(unsigned t) { return *inners_[t]; }

  private:
    cache::LlcPolicy& innerOf(const cache::AccessInfo& info)
    {
        return *inners_[info.core];
    }

    PartitionMap partition_;
    std::vector<std::unique_ptr<cache::LlcPolicy>> inners_;
};

} // namespace mrp::tenant

#endif // MRP_TENANT_TENANT_POLICY_HPP
