#include "tenant/tenant_policy.hpp"

#include "util/logging.hpp"

namespace mrp::tenant {

namespace {

std::vector<std::uint32_t>
sizesOf(const TenancyConfig& cfg)
{
    std::vector<std::uint32_t> sizes;
    sizes.reserve(cfg.tenants.size());
    for (const TenantConfig& t : cfg.tenants)
        sizes.push_back(t.ways);
    return sizes;
}

} // namespace

TenantPartitionPolicy::TenantPartitionPolicy(
    const cache::CacheGeometry& geom, unsigned cores,
    const TenancyConfig& cfg, const InnerPolicyFactory& inner)
    : partition_(sizesOf(cfg), geom.ways())
{
    const std::string why = describeInvalid(cfg, geom.ways(), cores);
    fatalIf(!why.empty(), ErrorCode::Config, "invalid tenancy: " + why);
    fatalIf(!inner, ErrorCode::Config,
            "tenancy needs an inner policy factory");
    inners_.reserve(cfg.tenants.size());
    // Each inner policy sees the full geometry (its victim choices are
    // confined by the mask at selection time) and the full core count,
    // but only ever receives its own tenant's events.
    for (std::size_t t = 0; t < cfg.tenants.size(); ++t)
        inners_.push_back(inner(geom, cores));
}

std::string
TenantPartitionPolicy::name() const
{
    return "Tenant(" + inners_[0]->name() + ")";
}

void
TenantPartitionPolicy::onHit(const cache::AccessInfo& info,
                             std::uint32_t set, std::uint32_t way)
{
    innerOf(info).onHit(info, set, way);
}

void
TenantPartitionPolicy::onMiss(const cache::AccessInfo& info,
                              std::uint32_t set)
{
    innerOf(info).onMiss(info, set);
}

bool
TenantPartitionPolicy::shouldBypass(const cache::AccessInfo& info,
                                    std::uint32_t set)
{
    return innerOf(info).shouldBypass(info, set);
}

std::uint32_t
TenantPartitionPolicy::victimWay(const cache::AccessInfo&, std::uint32_t)
{
    panic("TenantPartitionPolicy victims are always mask-confined");
}

std::uint32_t
TenantPartitionPolicy::victimWayIn(const cache::AccessInfo& info,
                                   std::uint32_t set, cache::WayMask mask)
{
    const std::uint32_t way =
        innerOf(info).victimWayIn(info, set, mask);
    panicIf((mask >> way & 1) == 0,
            "inner policy chose a victim outside the partition");
    return way;
}

void
TenantPartitionPolicy::onFill(const cache::AccessInfo& info,
                              std::uint32_t set, std::uint32_t way)
{
    innerOf(info).onFill(info, set, way);
}

void
TenantPartitionPolicy::onEvict(std::uint32_t set, std::uint32_t way)
{
    // Evictions carry no access info; route by the way's current
    // owner. Right after a QoS resize the receiving tenant may evict a
    // stale block the donor left behind — its inner policy trains on
    // that eviction, which is the deterministic choice documented in
    // DESIGN.md.
    inners_[partition_.tenantOfWay(way)]->onEvict(set, way);
}

cache::WayMask
TenantPartitionPolicy::fillWays(const cache::AccessInfo& info,
                                std::uint32_t)
{
    return partition_.maskOf(info.core);
}

std::uint32_t
TenantPartitionPolicy::tenantOf(const cache::AccessInfo& info) const
{
    return info.core;
}

void
TenantPartitionPolicy::attachTelemetry(
    telemetry::MetricsRegistry& registry)
{
    // Policy-internal probes (predictor weights, sampler state) use
    // fixed metric names, so only one inner may register them; tenant 0
    // is the documented owner. Partition-level tenant.* metrics are
    // registered by the multi-core driver, which can also see
    // occupancy and misses.
    inners_[0]->attachTelemetry(registry);
}

} // namespace mrp::tenant
