/**
 * @file
 * Multi-tenant LLC configuration: per-tenant partition sizes and SLOs,
 * and the QoS controller's knobs. One tenant per core; an empty tenant
 * list means the cache is shared exactly as before this subsystem
 * existed.
 */

#ifndef MRP_TENANT_CONFIG_HPP
#define MRP_TENANT_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace mrp::tenant {

/** One tenant (= one core) of a partitioned LLC. */
struct TenantConfig
{
    std::uint32_t ways = 0; //!< initial partition size, in LLC ways
    double sloMpki = 0.0;   //!< MPKI ceiling; 0 = best-effort tenant
};

/**
 * QoS controller parameters. The controller observes per-tenant MPKI
 * once per epoch (epochs are counted in *total* retired instructions
 * across cores, so the schedule is a pure function of the interleaved
 * simulation — deterministic at any --jobs) and moves at most one way
 * per epoch.
 */
struct QosConfig
{
    bool enabled = false;
    std::uint64_t epochInstructions = 100000; //!< epoch length (total)
    unsigned breachEpochs = 2;  //!< consecutive breaches before a grant
    unsigned calmEpochs = 4;    //!< consecutive calm epochs before return
    double hysteresisFrac = 0.1; //!< calm means mpki < slo*(1-frac)
    std::uint32_t minWays = 1;  //!< no tenant shrinks below this
};

/** Full tenancy description for a multi-core run. */
struct TenancyConfig
{
    std::vector<TenantConfig> tenants; //!< one per core; empty = shared
    QosConfig qos;

    bool configured() const { return !tenants.empty(); }
};

/**
 * Explain why @p cfg is invalid for a cache with @p llcWays ways and
 * @p cores cores, or return the empty string if it is valid. Checks:
 * one tenant per core, partition sizes that sum exactly to the
 * associativity with every tenant owning at least one way, at most
 * 64 ways (the WayMask width), and QoS knobs in range.
 */
std::string describeInvalid(const TenancyConfig& cfg,
                            std::uint32_t llcWays, unsigned cores);

} // namespace mrp::tenant

#endif // MRP_TENANT_CONFIG_HPP
