/**
 * @file
 * The way-partition map: which LLC ways each tenant owns. Masks are
 * always a disjoint cover of the associativity, every tenant keeps at
 * least one way, and resizes move exactly one way at a time with a
 * deterministic choice of which (the donor's highest way), so a
 * resize schedule replays byte-identically.
 */

#ifndef MRP_TENANT_PARTITION_HPP
#define MRP_TENANT_PARTITION_HPP

#include <cstdint>
#include <vector>

#include "cache/llc_policy.hpp"

namespace mrp::tenant {

/** Per-tenant way masks over one LLC. */
class PartitionMap
{
  public:
    /**
     * Assign contiguous way ranges in tenant order: tenant 0 gets ways
     * [0, ways[0]), tenant 1 the next ways[1], and so on. @p sizes must
     * sum exactly to @p llcWays with every entry >= 1.
     */
    PartitionMap(const std::vector<std::uint32_t>& sizes,
                 std::uint32_t llcWays);

    unsigned tenants() const
    {
        return static_cast<unsigned>(masks_.size());
    }
    cache::WayMask maskOf(unsigned tenant) const;
    std::uint32_t waysOf(unsigned tenant) const;

    /** The tenant currently owning @p way. */
    unsigned tenantOfWay(std::uint32_t way) const;

    /**
     * Move one way from @p from to @p to: the donor's highest way, so
     * repeated moves are reproducible. @p from must own at least two
     * ways.
     */
    void moveWay(unsigned from, unsigned to);

  private:
    void checkInvariants() const;

    std::vector<cache::WayMask> masks_;
    std::uint32_t llcWays_;
};

} // namespace mrp::tenant

#endif // MRP_TENANT_PARTITION_HPP
