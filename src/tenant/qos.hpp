/**
 * @file
 * The QoS controller: a per-epoch state machine that resizes the way
 * partition to hold each SLO tenant under its MPKI ceiling.
 *
 * Determinism contract: decisions depend only on the per-tenant MPKI
 * series handed to onEpoch (itself a pure function of the interleaved
 * simulation), the TenancyConfig, and the partition state — never on
 * wall time, thread count, or iteration order of anything unordered.
 * Ties break toward the lowest tenant id, and at most one way moves
 * per epoch, so the full resize schedule replays byte-identically.
 *
 * Per SLO tenant: `breachEpochs` consecutive epochs above the ceiling
 * earn a one-way grant from the largest best-effort (or non-breaching)
 * partition; `calmEpochs` consecutive epochs below ceiling*(1 -
 * hysteresisFrac) return one borrowed way to the tenant furthest
 * below its configured size. Epochs inside the hysteresis band reset
 * both streaks.
 */

#ifndef MRP_TENANT_QOS_HPP
#define MRP_TENANT_QOS_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "tenant/config.hpp"
#include "tenant/partition.hpp"

namespace mrp::tenant {

/** One partition resize, for reports and determinism diffs. */
struct QosResize
{
    std::uint64_t epoch = 0; //!< epoch index at which it happened
    unsigned from = 0;       //!< donor tenant
    unsigned to = 0;         //!< receiving tenant
};

/** Epoch-driven partition resizer enforcing per-tenant MPKI SLOs. */
class QosController
{
  public:
    QosController(const TenancyConfig& cfg, PartitionMap& partition);

    /**
     * Feed one epoch of per-tenant MPKI (one value per tenant, in
     * tenant order). Applies at most one resize; returns true if the
     * partition changed.
     */
    bool onEpoch(std::span<const double> mpki);

    std::uint64_t epochs() const { return epoch_; }
    const std::vector<QosResize>& resizes() const { return resizes_; }

  private:
    /** Donor for a grant to @p needy; tenants() if none qualifies. */
    unsigned pickDonor(unsigned needy,
                       std::span<const double> mpki) const;
    /** Receiver for a way returned by @p calm; tenants() if none. */
    unsigned pickReturnee(unsigned calm) const;

    TenancyConfig cfg_;
    PartitionMap& partition_;
    std::vector<unsigned> breachStreak_;
    std::vector<unsigned> calmStreak_;
    std::uint64_t epoch_ = 0;
    std::vector<QosResize> resizes_;
};

} // namespace mrp::tenant

#endif // MRP_TENANT_QOS_HPP
