#include "tenant/partition.hpp"

#include "tenant/config.hpp"
#include "util/logging.hpp"

namespace mrp::tenant {

std::string
describeInvalid(const TenancyConfig& cfg, std::uint32_t llcWays,
                unsigned cores)
{
    if (!cfg.configured())
        return "";
    if (cfg.tenants.size() != cores)
        return "tenancy needs exactly one tenant per core (" +
               std::to_string(cfg.tenants.size()) + " tenants, " +
               std::to_string(cores) + " cores)";
    if (llcWays > 64)
        return "way-partitioning supports at most 64 ways";
    std::uint64_t sum = 0;
    for (std::size_t t = 0; t < cfg.tenants.size(); ++t) {
        if (cfg.tenants[t].ways == 0)
            return "tenant " + std::to_string(t) +
                   " must own at least one way";
        if (cfg.tenants[t].sloMpki < 0.0)
            return "tenant " + std::to_string(t) +
                   " has a negative SLO";
        sum += cfg.tenants[t].ways;
    }
    if (sum != llcWays)
        return "partition sizes sum to " + std::to_string(sum) +
               " but the LLC has " + std::to_string(llcWays) + " ways";
    if (cfg.qos.enabled) {
        if (cfg.qos.epochInstructions == 0)
            return "QoS epoch length must be positive";
        if (cfg.qos.minWays == 0)
            return "QoS minWays must be at least 1";
        if (cfg.qos.hysteresisFrac < 0.0 || cfg.qos.hysteresisFrac >= 1.0)
            return "QoS hysteresis fraction must be in [0, 1)";
    }
    return "";
}

PartitionMap::PartitionMap(const std::vector<std::uint32_t>& sizes,
                           std::uint32_t llcWays)
    : masks_(sizes.size(), 0), llcWays_(llcWays)
{
    fatalIf(sizes.empty(), ErrorCode::Config,
            "partition map needs at least one tenant");
    fatalIf(llcWays > 64, ErrorCode::Config,
            "way-partitioning supports at most 64 ways");
    std::uint32_t next = 0;
    for (std::size_t t = 0; t < sizes.size(); ++t) {
        fatalIf(sizes[t] == 0, ErrorCode::Config,
                "every tenant needs at least one way");
        fatalIf(next + sizes[t] > llcWays, ErrorCode::Config,
                "partition sizes exceed the associativity");
        for (std::uint32_t w = 0; w < sizes[t]; ++w)
            masks_[t] |= cache::WayMask{1} << (next + w);
        next += sizes[t];
    }
    fatalIf(next != llcWays, ErrorCode::Config,
            "partition sizes must sum to the associativity");
    checkInvariants();
}

cache::WayMask
PartitionMap::maskOf(unsigned tenant) const
{
    panicIf(tenant >= masks_.size(), "tenant out of range");
    return masks_[tenant];
}

std::uint32_t
PartitionMap::waysOf(unsigned tenant) const
{
    return static_cast<std::uint32_t>(
        __builtin_popcountll(maskOf(tenant)));
}

unsigned
PartitionMap::tenantOfWay(std::uint32_t way) const
{
    panicIf(way >= llcWays_, "way out of range");
    for (unsigned t = 0; t < masks_.size(); ++t)
        if ((masks_[t] >> way & 1) != 0)
            return t;
    panic("way owned by no tenant"); // unreachable: masks cover
}

void
PartitionMap::moveWay(unsigned from, unsigned to)
{
    panicIf(from == to, "resize needs two distinct tenants");
    panicIf(waysOf(from) < 2, "donor would drop below one way");
    // The donor's highest way: 63 - clz is its index.
    const std::uint32_t way = static_cast<std::uint32_t>(
        63 - __builtin_clzll(maskOf(from)));
    masks_[from] &= ~(cache::WayMask{1} << way);
    masks_[to] |= cache::WayMask{1} << way;
    checkInvariants();
}

void
PartitionMap::checkInvariants() const
{
    cache::WayMask seen = 0;
    for (const cache::WayMask m : masks_) {
        panicIf(m == 0, "tenant with an empty partition");
        panicIf((seen & m) != 0, "overlapping partitions");
        seen |= m;
    }
    panicIf(seen != cache::fullWayMask(llcWays_),
            "partitions do not cover the cache");
}

} // namespace mrp::tenant
