#include "tenant/qos.hpp"

#include "util/logging.hpp"

namespace mrp::tenant {

QosController::QosController(const TenancyConfig& cfg,
                             PartitionMap& partition)
    : cfg_(cfg), partition_(partition),
      breachStreak_(cfg.tenants.size(), 0),
      calmStreak_(cfg.tenants.size(), 0)
{
    fatalIf(!cfg.qos.enabled, ErrorCode::Config,
            "QosController needs qos.enabled");
    fatalIf(cfg.tenants.size() != partition.tenants(), ErrorCode::Config,
            "QoS tenant count does not match the partition map");
}

unsigned
QosController::pickDonor(unsigned needy,
                         std::span<const double> mpki) const
{
    const unsigned n = partition_.tenants();
    unsigned donor = n;
    for (unsigned t = 0; t < n; ++t) {
        if (t == needy)
            continue;
        // Never shrink a tenant below the floor, and never rob an SLO
        // tenant that is itself above its ceiling.
        if (partition_.waysOf(t) <= cfg_.qos.minWays)
            continue;
        const double slo = cfg_.tenants[t].sloMpki;
        if (slo > 0.0 && mpki[t] > slo)
            continue;
        if (donor == n || partition_.waysOf(t) > partition_.waysOf(donor))
            donor = t; // largest partition; ties keep the lowest id
    }
    return donor;
}

unsigned
QosController::pickReturnee(unsigned calm) const
{
    const unsigned n = partition_.tenants();
    unsigned best = n;
    std::uint32_t best_deficit = 0;
    for (unsigned t = 0; t < n; ++t) {
        if (t == calm)
            continue;
        const std::uint32_t have = partition_.waysOf(t);
        const std::uint32_t want = cfg_.tenants[t].ways;
        if (have >= want)
            continue;
        const std::uint32_t deficit = want - have;
        if (best == n || deficit > best_deficit) {
            best = t; // biggest deficit; ties keep the lowest id
            best_deficit = deficit;
        }
    }
    return best;
}

bool
QosController::onEpoch(std::span<const double> mpki)
{
    const unsigned n = partition_.tenants();
    fatalIf(mpki.size() != n, ErrorCode::Config,
            "QoS epoch needs one MPKI value per tenant");
    const std::uint64_t epoch = epoch_++;

    for (unsigned t = 0; t < n; ++t) {
        const double slo = cfg_.tenants[t].sloMpki;
        if (slo <= 0.0)
            continue;
        if (mpki[t] > slo) {
            ++breachStreak_[t];
            calmStreak_[t] = 0;
        } else if (mpki[t] < slo * (1.0 - cfg_.qos.hysteresisFrac)) {
            ++calmStreak_[t];
            breachStreak_[t] = 0;
        } else {
            // Inside the hysteresis band: hold steady.
            breachStreak_[t] = 0;
            calmStreak_[t] = 0;
        }
    }

    // One action per epoch, tenants scanned in id order: grants (SLO
    // protection) take priority over returns (fairness restoration).
    for (unsigned t = 0; t < n; ++t) {
        if (cfg_.tenants[t].sloMpki <= 0.0 ||
            breachStreak_[t] < cfg_.qos.breachEpochs)
            continue;
        const unsigned donor = pickDonor(t, mpki);
        breachStreak_[t] = 0;
        if (donor == n)
            continue; // nobody can donate; retry after the next streak
        partition_.moveWay(donor, t);
        resizes_.push_back({epoch, donor, t});
        return true;
    }
    for (unsigned t = 0; t < n; ++t) {
        if (cfg_.tenants[t].sloMpki <= 0.0 ||
            calmStreak_[t] < cfg_.qos.calmEpochs)
            continue;
        // Only give back ways borrowed beyond the configured size.
        if (partition_.waysOf(t) <= cfg_.tenants[t].ways ||
            partition_.waysOf(t) <= cfg_.qos.minWays)
            continue;
        const unsigned returnee = pickReturnee(t);
        calmStreak_[t] = 0;
        if (returnee == n)
            continue;
        partition_.moveWay(t, returnee);
        resizes_.push_back({epoch, t, returnee});
        return true;
    }
    return false;
}

} // namespace mrp::tenant
