#include "trace/generators.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <vector>

#include "trace/builder.hpp"
#include "util/logging.hpp"

namespace mrp::trace {

namespace {

/** Number of whole blocks in a byte size (at least 1). */
Addr
blocksIn(Addr bytes)
{
    const Addr n = bytes / kBlockBytes;
    return n == 0 ? 1 : n;
}

Addr
gcd(Addr a, Addr b)
{
    while (b != 0) {
        const Addr t = a % b;
        a = b;
        b = t;
    }
    return a;
}

/**
 * Visits the n blocks of a region in a fixed pseudo-random order that
 * repeats identically every pass: the reuse distance stays exactly n
 * for every block while the stream prefetcher sees no usable stride.
 */
class PermutedWalk
{
  public:
    explicit PermutedWalk(Addr n) : n_(n)
    {
        panicIf(n == 0, "empty permutation");
        // A multiplier near the golden ratio, made coprime with n,
        // yields a well-scattered exact permutation i -> i*step mod n.
        step_ = (n * 1618) / 2618 | 1;
        if (step_ <= 1)
            step_ = 1;
        while (gcd(step_, n_) != 1)
            step_ += 2;
    }

    Addr at(Addr i) const { return (i % n_) * step_ % n_; }

  private:
    Addr n_;
    Addr step_;
};

} // namespace

Trace
makeStream(const GenParams& p, Addr ws_bytes, unsigned pads_per_access)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    const Addr nblocks = blocksIn(ws_bytes);
    Addr i = 0;
    while (b.instructions() < p.instructions) {
        const Addr a = p.dataBase + (i % nblocks) * kBlockBytes +
                       ((i * 8) & 56);
        b.load(1, a);
        if (i % 8 == 7)
            b.store(2, a);
        b.pad(pads_per_access);
        ++i;
    }
    return std::move(b).build();
}

Trace
makeCyclicThrash(const GenParams& p, Addr ws_bytes,
                 unsigned pads_per_access)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    const Addr nblocks = blocksIn(ws_bytes);
    const PermutedWalk walk(nblocks);
    Addr i = 0;
    while (b.instructions() < p.instructions) {
        const Addr blk = walk.at(i);
        const Addr a = p.dataBase + blk * kBlockBytes + ((blk * 8) & 56);
        b.load(1, a);
        b.pad(pads_per_access);
        ++i;
    }
    return std::move(b).build();
}

Trace
makeScanPollute(const GenParams& p, Addr hot_bytes, Addr scan_bytes,
                unsigned accesses_per_scan_burst, unsigned pads_per_access)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    const Addr hot_blocks = blocksIn(hot_bytes);
    const Addr scan_blocks = blocksIn(scan_bytes);
    const PermutedWalk hot_walk(hot_blocks);
    const Addr scan_base = p.dataBase + (hot_blocks + 64) * kBlockBytes;
    Addr hot_i = 0;
    Addr scan_i = 0;
    // Interleave: a stretch of hot-loop iterations, then a scan burst
    // from a different code site.
    while (b.instructions() < p.instructions) {
        for (unsigned k = 0;
             k < 4 * accesses_per_scan_burst &&
             b.instructions() < p.instructions;
             ++k) {
            b.load(1, p.dataBase + hot_walk.at(hot_i) * kBlockBytes);
            b.pad(pads_per_access);
            ++hot_i;
        }
        for (unsigned k = 0;
             k < accesses_per_scan_burst &&
             b.instructions() < p.instructions;
             ++k) {
            const Addr blk = scan_i % scan_blocks;
            b.load(7, scan_base + blk * kBlockBytes + ((blk * 16) & 48));
            b.pad(pads_per_access);
            ++scan_i;
        }
    }
    return std::move(b).build();
}

Trace
makeSamePcMixed(const GenParams& p, Addr hot_bytes, Addr cold_bytes,
                double hot_prob, unsigned pads_per_access)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    const Addr hot_blocks = blocksIn(hot_bytes);
    const Addr cold_blocks = blocksIn(cold_bytes);
    const PermutedWalk hot_walk(hot_blocks);
    const PermutedWalk cold_walk(cold_blocks);
    const Addr cold_base = p.dataBase + (hot_blocks + 64) * kBlockBytes;
    Addr hot_i = 0;
    Addr cold_i = 0;
    while (b.instructions() < p.instructions) {
        if (b.rng().chance(hot_prob)) {
            b.load(1, p.dataBase + hot_walk.at(hot_i) * kBlockBytes);
            ++hot_i;
        } else {
            // The *same* code site streams through the cold region.
            b.load(1, cold_base + cold_walk.at(cold_i) * kBlockBytes);
            ++cold_i;
        }
        b.pad(pads_per_access);
    }
    return std::move(b).build();
}

Trace
makeFieldAccess(const GenParams& p, Addr region_bytes, Addr hot_bytes,
                double payload_prob, unsigned pads_per_access)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    const Addr nblocks = blocksIn(region_bytes);
    const Addr hot_blocks = blocksIn(hot_bytes);
    const PermutedWalk scan_walk(nblocks);
    const PermutedWalk hot_walk(hot_blocks);
    Addr scan_i = 0;
    Addr hot_i = 0;
    while (b.instructions() < p.instructions) {
        if (b.rng().chance(payload_prob)) {
            // Hot record re-processing: payload fields at offsets
            // 16..56; these blocks are live (re-read soon).
            const Addr off = 16 + 8 * b.rng().below(6);
            b.load(1,
                   p.dataBase + hot_walk.at(hot_i) * kBlockBytes + off);
            ++hot_i;
        } else {
            // Header scan at offset 0 over the whole region; each
            // header touch is the block's last use for a long time.
            b.load(1, p.dataBase +
                          (hot_blocks + 64 + scan_walk.at(scan_i)) *
                              kBlockBytes);
            ++scan_i;
        }
        b.pad(pads_per_access);
    }
    return std::move(b).build();
}

Trace
makePointerChase(const GenParams& p, Addr ws_bytes, unsigned pads_per_hop)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    const Addr nblocks = blocksIn(ws_bytes);

    // Build a single random cycle over all blocks (Sattolo's algorithm)
    // so the chase has no short cycles.
    std::vector<std::uint32_t> next(nblocks);
    std::iota(next.begin(), next.end(), 0);
    for (Addr i = nblocks - 1; i > 0; --i) {
        const Addr j = b.rng().below(i);
        std::swap(next[i], next[j]);
    }

    const Addr aux_blocks = blocksIn(512 * 1024);
    const PermutedWalk aux_walk(aux_blocks);
    const Addr aux_base = p.dataBase + (nblocks + 64) * kBlockBytes;
    Addr cur = 0;
    Addr aux_i = 0;
    while (b.instructions() < p.instructions) {
        b.load(1, p.dataBase + cur * kBlockBytes, /*dep=*/true);
        cur = next[cur];
        // A little live work between hops.
        b.load(2, aux_base + aux_walk.at(aux_i) * kBlockBytes);
        ++aux_i;
        b.pad(pads_per_hop);
    }
    return std::move(b).build();
}

Trace
makeBurst(const GenParams& p, Addr stream_bytes, Addr hot_bytes,
          unsigned burst_len, unsigned pads_per_access)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    panicIf(burst_len == 0, "burst_len must be positive");
    // Three interleaved behaviours from three code sites (distinct
    // loops of one program), with offset and insert signals layered on
    // top of the PC signal:
    //   (a) a pure stream touching record headers at offset 0 — dead
    //       on arrival;
    //   (b) a delayed-second-touch stream at payload offsets 8..56:
    //       each block is re-read once after a gap that clears L1/L2
    //       (so the LLC sees the reuse), then dies — the second touch
    //       is an LLC hit whose block should not be promoted;
    //   (c) a small hot loop with genuine long-term reuse.
    // The within-block offset separates (a) from (b); the insert bit
    // separates first touches from the dying second touch.
    const unsigned gap = 1000 + 500 * burst_len;
    const Addr stream_blocks = blocksIn(stream_bytes);
    const Addr hot_blocks = blocksIn(hot_bytes);
    const PermutedWalk live_walk(stream_blocks);
    const PermutedWalk dead_walk(stream_blocks);
    const PermutedWalk hot_walk(hot_blocks);
    const Addr dead_base =
        p.dataBase + (stream_blocks + 64) * kBlockBytes;
    const Addr hot_base =
        dead_base + (stream_blocks + 64) * kBlockBytes;
    std::deque<Addr> pending;
    Addr s = 0;
    Addr hot_i = 0;
    while (b.instructions() < p.instructions) {
        // (b) first touch, payload offset.
        const Addr blk = live_walk.at(s);
        b.load(1, p.dataBase + blk * kBlockBytes + 8 + ((s * 8) & 48));
        b.pad(pads_per_access);
        pending.push_back(blk);
        if (pending.size() > gap) {
            // (b) second touch: last use of the block.
            b.load(2, p.dataBase + pending.front() * kBlockBytes + 16);
            b.pad(pads_per_access);
            pending.pop_front();
        }
        // (a) pure dead stream at header offset 0.
        b.load(3, dead_base + dead_walk.at(s) * kBlockBytes);
        b.pad(pads_per_access);
        ++s;
        // (c) hot loop with real reuse.
        b.load(4, hot_base + hot_walk.at(hot_i) * kBlockBytes + 32);
        b.pad(pads_per_access);
        ++hot_i;
    }
    return std::move(b).build();
}

Trace
makePhased(const GenParams& p, Addr friendly_bytes, Addr thrash_bytes,
           InstCount phase_insts, unsigned pads_per_access)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    const Addr f_blocks = blocksIn(friendly_bytes);
    const Addr t_blocks = blocksIn(thrash_bytes);
    const PermutedWalk f_walk(f_blocks);
    const PermutedWalk t_walk(t_blocks);
    const Addr t_base = p.dataBase + (f_blocks + 64) * kBlockBytes;
    Addr fi = 0;
    Addr ti = 0;
    bool friendly = true;
    while (b.instructions() < p.instructions) {
        const InstCount phase_end = b.instructions() + phase_insts;
        if (friendly) {
            while (b.instructions() < phase_end &&
                   b.instructions() < p.instructions) {
                b.load(1, p.dataBase + f_walk.at(fi) * kBlockBytes);
                b.pad(pads_per_access);
                ++fi;
            }
        } else {
            while (b.instructions() < phase_end &&
                   b.instructions() < p.instructions) {
                b.load(2, t_base + t_walk.at(ti) * kBlockBytes);
                b.pad(pads_per_access);
                ++ti;
            }
        }
        friendly = !friendly;
    }
    return std::move(b).build();
}

Trace
makeProducerConsumer(const GenParams& p, Addr buf_bytes,
                     unsigned bufs_in_flight, unsigned pads_per_access)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    panicIf(bufs_in_flight < 2, "need at least two buffers in flight");
    const Addr buf_blocks = blocksIn(buf_bytes);
    std::uint64_t produce_idx = 0;
    while (b.instructions() < p.instructions) {
        // Produce buffer produce_idx (stores), consume buffer
        // produce_idx - (bufs_in_flight - 1) (loads, one pass, then the
        // buffer slot is dead until the producer wraps back onto it).
        const Addr pslot = produce_idx % bufs_in_flight;
        const Addr pbase = p.dataBase + pslot * buf_blocks * kBlockBytes;
        const bool can_consume = produce_idx + 1 >= bufs_in_flight;
        const Addr cslot =
            (produce_idx + 1) % bufs_in_flight; // oldest in flight
        const Addr cbase = p.dataBase + cslot * buf_blocks * kBlockBytes;
        for (Addr k = 0;
             k < buf_blocks && b.instructions() < p.instructions; ++k) {
            b.store(1, pbase + k * kBlockBytes + ((k * 8) & 56));
            b.pad(pads_per_access);
            if (can_consume) {
                b.load(2, cbase + k * kBlockBytes);
                b.pad(pads_per_access);
            }
        }
        ++produce_idx;
    }
    return std::move(b).build();
}

Trace
makeLoopNest(const GenParams& p, Addr inner_bytes, Addr mid_bytes,
             Addr outer_bytes, unsigned pads_per_access)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    const Addr ni = blocksIn(inner_bytes);
    const Addr nm = blocksIn(mid_bytes);
    const Addr no = blocksIn(outer_bytes);
    const PermutedWalk mid_walk(nm);
    const Addr mid_base = p.dataBase + (ni + 64) * kBlockBytes;
    const Addr outer_base = mid_base + (nm + 64) * kBlockBytes;
    Addr ii = 0;
    Addr mi = 0;
    Addr oi = 0;
    while (b.instructions() < p.instructions) {
        b.load(1, p.dataBase + (ii % ni) * kBlockBytes);
        b.load(2, mid_base + mid_walk.at(mi) * kBlockBytes);
        if (ii % 16 == 15) {
            b.load(3, outer_base + (oi % no) * kBlockBytes);
            ++oi;
        }
        if (ii % 4 == 3)
            ++mi;
        ++ii;
        b.pad(pads_per_access);
    }
    return std::move(b).build();
}

Trace
makeGups(const GenParams& p, Addr ws_bytes, unsigned pads_per_access)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    const Addr nblocks = blocksIn(ws_bytes);
    while (b.instructions() < p.instructions) {
        const Addr blk = b.rng().below(nblocks);
        const Addr a =
            p.dataBase + blk * kBlockBytes + 8 * b.rng().below(8);
        b.load(1, a);
        b.store(2, a);
        b.pad(pads_per_access);
    }
    return std::move(b).build();
}

Trace
makeBranchyCompute(const GenParams& p, Addr ws_bytes,
                   unsigned pads_per_access)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    const Addr nblocks = blocksIn(ws_bytes);
    Addr i = 0;
    while (b.instructions() < p.instructions) {
        const Addr blk = b.rng().below(nblocks);
        b.load(1 + static_cast<unsigned>(i % 4), // several code sites
               p.dataBase + blk * kBlockBytes);
        b.pad(pads_per_access);
        ++i;
    }
    return std::move(b).build();
}

Trace
makeDriftingWs(const GenParams& p, Addr window_bytes, Addr region_bytes,
               unsigned drift_period, unsigned pads_per_access)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    const Addr win_blocks = blocksIn(window_bytes);
    const Addr region_blocks = blocksIn(region_bytes);
    Addr window_start = 0;
    Addr i = 0;
    while (b.instructions() < p.instructions) {
        const Addr blk =
            (window_start + b.rng().below(win_blocks)) % region_blocks;
        b.load(1, p.dataBase + blk * kBlockBytes);
        b.pad(pads_per_access);
        if (++i % drift_period == 0)
            window_start = (window_start + 1) % region_blocks;
    }
    return std::move(b).build();
}

Trace
makeHotColdSets(const GenParams& p, Addr hot_bytes, Addr stream_bytes,
                unsigned pads_per_access)
{
    TraceBuilder b(p.name, p.codeBase, p.seed);
    const Addr hot_blocks = blocksIn(hot_bytes);
    const Addr stream_blocks = blocksIn(stream_bytes);
    const PermutedWalk hot_walk(hot_blocks);
    // The streaming region uses a 128-byte stride so it maps only to
    // even LLC sets: pressure differs sharply between sets.
    const Addr stream_base =
        p.dataBase + 2 * (hot_blocks + stream_blocks + 64) * kBlockBytes;
    Addr hi = 0;
    Addr si = 0;
    while (b.instructions() < p.instructions) {
        b.load(1, p.dataBase + hot_walk.at(hi) * kBlockBytes);
        ++hi;
        b.load(1, stream_base + (si % stream_blocks) * 2 * kBlockBytes);
        ++si;
        b.pad(pads_per_access);
    }
    return std::move(b).build();
}

} // namespace mrp::trace
