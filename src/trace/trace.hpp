/**
 * @file
 * An in-memory instruction trace with identity metadata.
 */

#ifndef MRP_TRACE_TRACE_HPP
#define MRP_TRACE_TRACE_HPP

#include <string>
#include <utility>
#include <vector>

#include "trace/record.hpp"
#include "util/types.hpp"

namespace mrp::trace {

/**
 * A named, immutable sequence of trace records standing in for one
 * benchmark simpoint.
 */
class Trace
{
  public:
    Trace(std::string name, std::vector<Record> records,
          InstCount instructions)
        : name_(std::move(name)), records_(std::move(records)),
          instructions_(instructions)
    {
    }

    const std::string& name() const { return name_; }
    const std::vector<Record>& records() const { return records_; }

    /** Total instructions represented (expanding non-memory runs). */
    InstCount instructions() const { return instructions_; }

    /** Number of memory operations in the trace. */
    InstCount
    memOps() const
    {
        InstCount n = 0;
        for (const auto& r : records_)
            if (r.isMem())
                ++n;
        return n;
    }

  private:
    std::string name_;
    std::vector<Record> records_;
    InstCount instructions_;
};

} // namespace mrp::trace

#endif // MRP_TRACE_TRACE_HPP
