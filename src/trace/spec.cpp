#include "trace/spec.hpp"

#include <cstring>
#include <fstream>
#include <utility>

#include "trace/wire_format.hpp"
#include "trace/workloads.hpp"
#include "util/logging.hpp"

namespace mrp::trace {

namespace {

// Private address regions for the streaming families, above the
// suite/held-out slots so no family ever aliases another's blocks.
constexpr Addr kStreamDataBase = Addr{0x40} << 32;
constexpr Addr kStreamDataStride = Addr{0x10} << 32;
constexpr Pc kStreamCodeBase = 0x4000000;
constexpr Pc kStreamCodeStride = 0x100000;

std::unique_ptr<TraceSource>
maybeDecodeAhead(std::unique_ptr<TraceSource> src,
                 const TraceSpec::OpenOptions& opts)
{
    if (!opts.decodeAhead)
        return src;
    return std::make_unique<DecodeAheadSource>(std::move(src),
                                               opts.queueDepth);
}

/** Read just enough of a trace-file header to learn its identity
 * (name + instruction count) without decoding the payload. */
void
peekHeader(const std::string& path, std::string& name,
           InstCount& instructions)
{
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, ErrorCode::Io, "cannot open for reading: " + path);
    char base[wire::kBaseHeaderBytes] = {};
    is.read(base, sizeof(base));
    fatalIf(!is, ErrorCode::CorruptInput,
            "truncated trace header in " + path);
    fatalIf(std::memcmp(base, wire::kMagic, sizeof(wire::kMagic)) != 0,
            ErrorCode::CorruptInput,
            "not a trace file (bad magic): " + path);
    std::uint32_t version = 0;
    std::uint64_t insts = 0;
    std::uint32_t name_len = 0;
    std::memcpy(&version, base + 4, sizeof(version));
    std::memcpy(&insts, base + 8, sizeof(insts));
    std::memcpy(&name_len, base + 24, sizeof(name_len));
    fatalIf(version < 1 || version > 3, ErrorCode::CorruptInput,
            "unsupported trace version " + std::to_string(version) +
                " in " + path);
    fatalIf(name_len > wire::kMaxNameLen, ErrorCode::CorruptInput,
            "implausible trace name length in " + path);
    if (version == 3)
        is.seekg(4, std::ios::cur); // the chunk-capacity field
    name.resize(name_len);
    if (name_len > 0)
        is.read(name.data(), name_len);
    fatalIf(!is, ErrorCode::CorruptInput,
            "truncated trace name in " + path);
    instructions = insts;
}

} // namespace

TraceSpec
TraceSpec::borrowed(const Trace& t)
{
    TraceSpec s;
    s.kind_ = Kind::Borrowed;
    s.borrowedTrace_ = &t;
    s.name_ = t.name();
    s.instructions_ = t.instructions();
    return s;
}

TraceSpec
TraceSpec::suite(unsigned index, InstCount instructions,
                 std::uint64_t seed)
{
    fatalIf(index >= suiteSize(), ErrorCode::Config,
            "suite index " + std::to_string(index) + " out of range");
    TraceSpec s;
    s.kind_ = Kind::Suite;
    s.index_ = index;
    s.seed_ = seed;
    s.name_ = suiteName(index);
    s.instructions_ = instructions;
    return s;
}

TraceSpec
TraceSpec::heldOut(unsigned index, InstCount instructions,
                   std::uint64_t seed)
{
    fatalIf(index >= heldOutSize(), ErrorCode::Config,
            "held-out index " + std::to_string(index) +
                " out of range");
    TraceSpec s;
    s.kind_ = Kind::HeldOut;
    s.index_ = index;
    s.seed_ = seed;
    s.name_ = heldOutName(index);
    s.instructions_ = instructions;
    return s;
}

TraceSpec
TraceSpec::file(std::string path)
{
    TraceSpec s;
    s.kind_ = Kind::File;
    s.path_ = std::move(path);
    peekHeader(s.path_, s.name_, s.instructions_);
    return s;
}

TraceSpec
TraceSpec::zipf(ZipfParams p)
{
    fatalIf(p.instructions == 0, ErrorCode::Config,
            "zipf spec needs a nonzero instruction target");
    if (p.dataBase == 0)
        p.dataBase = kStreamDataBase;
    if (p.codeBase == 0)
        p.codeBase = kStreamCodeBase;
    TraceSpec s;
    s.kind_ = Kind::Zipf;
    s.name_ = p.name;
    s.instructions_ = p.instructions;
    s.zipf_ = std::move(p);
    return s;
}

TraceSpec
TraceSpec::blockIo(BlockIoParams p)
{
    fatalIf(p.instructions == 0, ErrorCode::Config,
            "blkio spec needs a nonzero instruction target");
    if (p.dataBase == 0)
        p.dataBase = kStreamDataBase + kStreamDataStride;
    if (p.codeBase == 0)
        p.codeBase = kStreamCodeBase + kStreamCodeStride;
    TraceSpec s;
    s.kind_ = Kind::BlockIo;
    s.name_ = p.name;
    s.instructions_ = p.instructions;
    s.blockIo_ = std::move(p);
    return s;
}

TraceSpec
TraceSpec::phaseMix(std::string name, InstCount instructions,
                    InstCount phase_insts,
                    std::vector<TraceSpec> children)
{
    fatalIf(children.empty(), ErrorCode::Config,
            "phase mix needs at least one child spec");
    for (const auto& c : children)
        fatalIf(c.kind_ == Kind::Borrowed, ErrorCode::Config,
                "phase mix children must be self-contained specs, "
                "not borrowed traces");
    TraceSpec s;
    s.kind_ = Kind::PhaseMix;
    s.name_ = std::move(name);
    s.instructions_ = instructions;
    s.phaseInsts_ = phase_insts;
    s.children_ = std::move(children);
    return s;
}

TraceSpec
TraceSpec::withInstructions(InstCount instructions) const
{
    fatalIf(kind_ == Kind::Borrowed || kind_ == Kind::File,
            ErrorCode::Config,
            "cannot resize a " +
                std::string(kind_ == Kind::File ? "file"
                                                : "borrowed") +
                " trace spec ('" + name_ + "')");
    TraceSpec s = *this;
    s.instructions_ = instructions;
    s.zipf_.instructions = instructions;
    s.blockIo_.instructions = instructions;
    return s;
}

std::unique_ptr<TraceSource>
TraceSpec::open(const OpenOptions& opts) const
{
    const std::size_t chunk = opts.chunkRecords == 0
                                  ? kDefaultChunkRecords
                                  : opts.chunkRecords;
    std::unique_ptr<TraceSource> src;
    switch (kind_) {
    case Kind::Borrowed:
        src = std::make_unique<MaterializedTraceSource>(
            *borrowedTrace_, chunk);
        break;
    case Kind::Suite:
        src = std::make_unique<MaterializedTraceSource>(
            makeSuiteTrace(index_, instructions_, seed_), chunk);
        break;
    case Kind::HeldOut:
        src = std::make_unique<MaterializedTraceSource>(
            makeHeldOutTrace(index_, instructions_, seed_), chunk);
        break;
    case Kind::File:
        src = std::make_unique<FileTraceSource>(path_, opts.fileMode);
        break;
    case Kind::Zipf: {
        ZipfParams p = zipf_;
        p.chunkRecords = chunk;
        src = makeZipfSource(p);
        break;
    }
    case Kind::BlockIo: {
        BlockIoParams p = blockIo_;
        p.chunkRecords = chunk;
        src = makeBlockIoSource(p);
        break;
    }
    case Kind::PhaseMix: {
        std::vector<std::unique_ptr<TraceSource>> kids;
        kids.reserve(children_.size());
        for (const auto& c : children_)
            kids.push_back(c.open());
        src = makePhaseMix(name_, instructions_, phaseInsts_,
                           std::move(kids), chunk);
        break;
    }
    }
    return maybeDecodeAhead(std::move(src), opts);
}

} // namespace mrp::trace
