#include "trace/spec.hpp"

#include <cstring>
#include <fstream>
#include <utility>

#include "trace/sampled_source.hpp"
#include "trace/wire_format.hpp"
#include "trace/workloads.hpp"
#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace mrp::trace {

namespace {

// Private address regions for the streaming families, above the
// suite/held-out slots so no family ever aliases another's blocks.
constexpr Addr kStreamDataBase = Addr{0x40} << 32;
constexpr Addr kStreamDataStride = Addr{0x10} << 32;
constexpr Pc kStreamCodeBase = 0x4000000;
constexpr Pc kStreamCodeStride = 0x100000;

std::unique_ptr<TraceSource>
maybeDecodeAhead(std::unique_ptr<TraceSource> src,
                 const TraceSpec::OpenOptions& opts)
{
    if (!opts.decodeAhead)
        return src;
    return std::make_unique<DecodeAheadSource>(std::move(src),
                                               opts.queueDepth);
}

/** Read just enough of a trace-file header to learn its identity
 * (name + instruction count) without decoding the payload. */
void
peekHeader(const std::string& path, std::string& name,
           InstCount& instructions)
{
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, ErrorCode::Io, "cannot open for reading: " + path);
    char base[wire::kBaseHeaderBytes] = {};
    is.read(base, sizeof(base));
    fatalIf(!is, ErrorCode::CorruptInput,
            "truncated trace header in " + path);
    fatalIf(std::memcmp(base, wire::kMagic, sizeof(wire::kMagic)) != 0,
            ErrorCode::CorruptInput,
            "not a trace file (bad magic): " + path);
    std::uint32_t version = 0;
    std::uint64_t insts = 0;
    std::uint32_t name_len = 0;
    std::memcpy(&version, base + 4, sizeof(version));
    std::memcpy(&insts, base + 8, sizeof(insts));
    std::memcpy(&name_len, base + 24, sizeof(name_len));
    fatalIf(version < 1 || version > 3, ErrorCode::CorruptInput,
            "unsupported trace version " + std::to_string(version) +
                " in " + path);
    fatalIf(name_len > wire::kMaxNameLen, ErrorCode::CorruptInput,
            "implausible trace name length in " + path);
    if (version == 3)
        is.seekg(4, std::ios::cur); // the chunk-capacity field
    name.resize(name_len);
    if (name_len > 0)
        is.read(name.data(), name_len);
    fatalIf(!is, ErrorCode::CorruptInput,
            "truncated trace name in " + path);
    instructions = insts;
}

} // namespace

TraceSpec
TraceSpec::borrowed(const Trace& t)
{
    TraceSpec s;
    s.kind_ = Kind::Borrowed;
    s.borrowedTrace_ = &t;
    s.name_ = t.name();
    s.instructions_ = t.instructions();
    return s;
}

TraceSpec
TraceSpec::suite(unsigned index, InstCount instructions,
                 std::uint64_t seed)
{
    fatalIf(index >= suiteSize(), ErrorCode::Config,
            "suite index " + std::to_string(index) + " out of range");
    TraceSpec s;
    s.kind_ = Kind::Suite;
    s.index_ = index;
    s.seed_ = seed;
    s.name_ = suiteName(index);
    s.instructions_ = instructions;
    return s;
}

TraceSpec
TraceSpec::heldOut(unsigned index, InstCount instructions,
                   std::uint64_t seed)
{
    fatalIf(index >= heldOutSize(), ErrorCode::Config,
            "held-out index " + std::to_string(index) +
                " out of range");
    TraceSpec s;
    s.kind_ = Kind::HeldOut;
    s.index_ = index;
    s.seed_ = seed;
    s.name_ = heldOutName(index);
    s.instructions_ = instructions;
    return s;
}

TraceSpec
TraceSpec::file(std::string path)
{
    TraceSpec s;
    s.kind_ = Kind::File;
    s.path_ = std::move(path);
    peekHeader(s.path_, s.name_, s.instructions_);
    return s;
}

TraceSpec
TraceSpec::zipf(ZipfParams p)
{
    fatalIf(p.instructions == 0, ErrorCode::Config,
            "zipf spec needs a nonzero instruction target");
    if (p.dataBase == 0)
        p.dataBase = kStreamDataBase;
    if (p.codeBase == 0)
        p.codeBase = kStreamCodeBase;
    TraceSpec s;
    s.kind_ = Kind::Zipf;
    s.name_ = p.name;
    s.instructions_ = p.instructions;
    s.zipf_ = std::move(p);
    return s;
}

TraceSpec
TraceSpec::blockIo(BlockIoParams p)
{
    fatalIf(p.instructions == 0, ErrorCode::Config,
            "blkio spec needs a nonzero instruction target");
    if (p.dataBase == 0)
        p.dataBase = kStreamDataBase + kStreamDataStride;
    if (p.codeBase == 0)
        p.codeBase = kStreamCodeBase + kStreamCodeStride;
    TraceSpec s;
    s.kind_ = Kind::BlockIo;
    s.name_ = p.name;
    s.instructions_ = p.instructions;
    s.blockIo_ = std::move(p);
    return s;
}

TraceSpec
TraceSpec::phaseMix(std::string name, InstCount instructions,
                    InstCount phase_insts,
                    std::vector<TraceSpec> children)
{
    fatalIf(children.empty(), ErrorCode::Config,
            "phase mix needs at least one child spec");
    for (const auto& c : children)
        fatalIf(c.kind_ == Kind::Borrowed, ErrorCode::Config,
                "phase mix children must be self-contained specs, "
                "not borrowed traces");
    TraceSpec s;
    s.kind_ = Kind::PhaseMix;
    s.name_ = std::move(name);
    s.instructions_ = instructions;
    s.phaseInsts_ = phase_insts;
    s.children_ = std::move(children);
    return s;
}

TraceSpec
TraceSpec::sampled(TraceSpec child, unsigned rate_log2)
{
    fatalIf(child.kind_ == Kind::Borrowed, ErrorCode::Config,
            "sampled specs need a self-contained child spec, not a "
            "borrowed trace");
    fatalIf(child.kind_ == Kind::Sampled, ErrorCode::Config,
            "sampled specs do not nest ('" + child.name_ + "')");
    fatalIf(rate_log2 == 0 || rate_log2 >= 24, ErrorCode::Config,
            "sampling rate log2 must be in [1, 24)");
    TraceSpec s;
    s.kind_ = Kind::Sampled;
    s.name_ = child.name_ + kSampledNameMarker +
              std::to_string(rate_log2);
    s.instructions_ = child.instructions_;
    s.rateLog2_ = rate_log2;
    s.children_.push_back(std::move(child));
    return s;
}

TraceSpec
TraceSpec::withInstructions(InstCount instructions) const
{
    fatalIf(kind_ == Kind::Borrowed || kind_ == Kind::File,
            ErrorCode::Config,
            "cannot resize a " +
                std::string(kind_ == Kind::File ? "file"
                                                : "borrowed") +
                " trace spec ('" + name_ + "')");
    // A sampled spec resizes through its child, so the regenerated
    // stream and the derived name stay consistent.
    if (kind_ == Kind::Sampled)
        return sampled(children_[0].withInstructions(instructions),
                       rateLog2_);
    TraceSpec s = *this;
    s.instructions_ = instructions;
    s.zipf_.instructions = instructions;
    s.blockIo_.instructions = instructions;
    return s;
}

namespace {

std::uint64_t
requireU64(const json::Value& v, const char* key,
           const std::string& what)
{
    return v.require(key, json::Value::Type::Number, what).asU64();
}

double
requireDouble(const json::Value& v, const char* key,
              const std::string& what)
{
    return v.require(key, json::Value::Type::Number, what).number;
}

std::string
requireString(const json::Value& v, const char* key,
              const std::string& what)
{
    return v.require(key, json::Value::Type::String, what).string;
}

} // namespace

std::string
TraceSpec::toJson() const
{
    // Every field that shapes the record sequence is serialized;
    // u64 values ride as JSON numbers, which is exact below 2^53 —
    // far above any instruction target or seed in use.
    switch (kind_) {
    case Kind::Borrowed:
        fatalIf(true, ErrorCode::Config,
                "borrowed trace spec '" + name_ +
                    "' points into process memory and cannot be "
                    "serialized; materialize it to a file spec first");
        break;
    case Kind::Suite:
    case Kind::HeldOut:
        return std::string("{\"kind\": ") +
               (kind_ == Kind::Suite ? "\"suite\"" : "\"heldOut\"") +
               ", \"index\": " + std::to_string(index_) +
               ", \"instructions\": " + std::to_string(instructions_) +
               ", \"seed\": " + std::to_string(seed_) + "}";
    case Kind::File:
        return "{\"kind\": \"file\", \"path\": " + json::str(path_) +
               "}";
    case Kind::Zipf:
        return "{\"kind\": \"zipf\", \"name\": " + json::str(zipf_.name) +
               ", \"instructions\": " +
               std::to_string(zipf_.instructions) +
               ", \"seed\": " + std::to_string(zipf_.seed) +
               ", \"dataBase\": " + std::to_string(zipf_.dataBase) +
               ", \"codeBase\": " + std::to_string(zipf_.codeBase) +
               ", \"keys\": " + std::to_string(zipf_.keys) +
               ", \"theta\": " + json::formatDouble(zipf_.theta) +
               ", \"storeProb\": " +
               json::formatDouble(zipf_.storeProb) +
               ", \"padsPerAccess\": " +
               std::to_string(zipf_.padsPerAccess) + "}";
    case Kind::BlockIo:
        return "{\"kind\": \"blkio\", \"name\": " +
               json::str(blockIo_.name) +
               ", \"instructions\": " +
               std::to_string(blockIo_.instructions) +
               ", \"seed\": " + std::to_string(blockIo_.seed) +
               ", \"dataBase\": " + std::to_string(blockIo_.dataBase) +
               ", \"codeBase\": " + std::to_string(blockIo_.codeBase) +
               ", \"volumeBytes\": " +
               std::to_string(blockIo_.volumeBytes) +
               ", \"hotFraction\": " +
               json::formatDouble(blockIo_.hotFraction) +
               ", \"seqProb\": " +
               json::formatDouble(blockIo_.seqProb) +
               ", \"hotProb\": " +
               json::formatDouble(blockIo_.hotProb) +
               ", \"writeProb\": " +
               json::formatDouble(blockIo_.writeProb) +
               ", \"maxRunBlocks\": " +
               std::to_string(blockIo_.maxRunBlocks) +
               ", \"padsPerRequest\": " +
               std::to_string(blockIo_.padsPerRequest) + "}";
    case Kind::PhaseMix: {
        std::string out = "{\"kind\": \"phaseMix\", \"name\": " +
                          json::str(name_) + ", \"instructions\": " +
                          std::to_string(instructions_) +
                          ", \"phaseInstructions\": " +
                          std::to_string(phaseInsts_) +
                          ", \"children\": [";
        for (std::size_t i = 0; i < children_.size(); ++i) {
            if (i)
                out += ", ";
            out += children_[i].toJson();
        }
        out += "]}";
        return out;
    }
    case Kind::Sampled:
        return "{\"kind\": \"sampled\", \"rateLog2\": " +
               std::to_string(rateLog2_) +
               ", \"child\": " + children_[0].toJson() + "}";
    }
    fatalIf(true, ErrorCode::Internal, "unreachable trace spec kind");
    return {};
}

TraceSpec
TraceSpec::fromJson(const json::Value& v, const std::string& what)
{
    fatalIf(!v.isObject(), ErrorCode::CorruptInput,
            what + ": trace spec must be a JSON object");
    const std::string kind = requireString(v, "kind", what);
    if (kind == "suite" || kind == "heldOut") {
        const auto index =
            static_cast<unsigned>(requireU64(v, "index", what));
        const auto insts = requireU64(v, "instructions", what);
        const auto seed = requireU64(v, "seed", what);
        return kind == "suite" ? suite(index, insts, seed)
                               : heldOut(index, insts, seed);
    }
    if (kind == "file")
        return file(requireString(v, "path", what));
    if (kind == "zipf") {
        ZipfParams p;
        p.name = requireString(v, "name", what);
        p.instructions = requireU64(v, "instructions", what);
        p.seed = requireU64(v, "seed", what);
        p.dataBase = requireU64(v, "dataBase", what);
        p.codeBase = requireU64(v, "codeBase", what);
        p.keys = requireU64(v, "keys", what);
        p.theta = requireDouble(v, "theta", what);
        p.storeProb = requireDouble(v, "storeProb", what);
        p.padsPerAccess =
            static_cast<unsigned>(requireU64(v, "padsPerAccess", what));
        return zipf(std::move(p));
    }
    if (kind == "blkio") {
        BlockIoParams p;
        p.name = requireString(v, "name", what);
        p.instructions = requireU64(v, "instructions", what);
        p.seed = requireU64(v, "seed", what);
        p.dataBase = requireU64(v, "dataBase", what);
        p.codeBase = requireU64(v, "codeBase", what);
        p.volumeBytes = requireU64(v, "volumeBytes", what);
        p.hotFraction = requireDouble(v, "hotFraction", what);
        p.seqProb = requireDouble(v, "seqProb", what);
        p.hotProb = requireDouble(v, "hotProb", what);
        p.writeProb = requireDouble(v, "writeProb", what);
        p.maxRunBlocks =
            static_cast<unsigned>(requireU64(v, "maxRunBlocks", what));
        p.padsPerRequest = static_cast<unsigned>(
            requireU64(v, "padsPerRequest", what));
        return blockIo(std::move(p));
    }
    if (kind == "phaseMix") {
        const std::string name = requireString(v, "name", what);
        const auto insts = requireU64(v, "instructions", what);
        const auto phase = requireU64(v, "phaseInstructions", what);
        const auto& kids =
            v.require("children", json::Value::Type::Array, what);
        std::vector<TraceSpec> children;
        children.reserve(kids.array.size());
        for (const auto& k : kids.array)
            children.push_back(fromJson(k, what));
        return phaseMix(name, insts, phase, std::move(children));
    }
    if (kind == "sampled") {
        const auto rate =
            static_cast<unsigned>(requireU64(v, "rateLog2", what));
        const auto& child =
            v.require("child", json::Value::Type::Object, what);
        return sampled(fromJson(child, what), rate);
    }
    fatalIf(true, ErrorCode::CorruptInput,
            what + ": unknown trace spec kind '" + kind + "'");
    return TraceSpec();
}

std::unique_ptr<TraceSource>
TraceSpec::open(const OpenOptions& opts) const
{
    const std::size_t chunk = opts.chunkRecords == 0
                                  ? kDefaultChunkRecords
                                  : opts.chunkRecords;
    std::unique_ptr<TraceSource> src;
    switch (kind_) {
    case Kind::Borrowed:
        src = std::make_unique<MaterializedTraceSource>(
            *borrowedTrace_, chunk);
        break;
    case Kind::Suite:
        src = std::make_unique<MaterializedTraceSource>(
            makeSuiteTrace(index_, instructions_, seed_), chunk);
        break;
    case Kind::HeldOut:
        src = std::make_unique<MaterializedTraceSource>(
            makeHeldOutTrace(index_, instructions_, seed_), chunk);
        break;
    case Kind::File:
        src = std::make_unique<FileTraceSource>(path_, opts.fileMode);
        break;
    case Kind::Zipf: {
        ZipfParams p = zipf_;
        p.chunkRecords = chunk;
        src = makeZipfSource(p);
        break;
    }
    case Kind::BlockIo: {
        BlockIoParams p = blockIo_;
        p.chunkRecords = chunk;
        src = makeBlockIoSource(p);
        break;
    }
    case Kind::PhaseMix: {
        std::vector<std::unique_ptr<TraceSource>> kids;
        kids.reserve(children_.size());
        for (const auto& c : children_)
            kids.push_back(c.open());
        src = makePhaseMix(name_, instructions_, phaseInsts_,
                           std::move(kids), chunk);
        break;
    }
    case Kind::Sampled: {
        // The child streams inline; decode-ahead (if requested) wraps
        // the sampled stream below so the hand-off buffers final
        // records, not soon-to-be-rewritten ones.
        OpenOptions childOpts = opts;
        childOpts.decodeAhead = false;
        src = std::make_unique<SampledTraceSource>(
            children_[0].open(childOpts), rateLog2_);
        break;
    }
    }
    return maybeDecodeAhead(std::move(src), opts);
}

} // namespace mrp::trace
