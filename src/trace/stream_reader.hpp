/**
 * @file
 * The chunked trace-file substrate: format v3 readers and writers.
 *
 * Format v3 (little-endian) extends the v1/v2 header with a chunked
 * payload so multi-GB traces stream in bounded memory and corruption
 * is localized to one chunk:
 *
 *   28-byte base header   magic "MRPT", u32 version=3,
 *                         u64 instructions, u64 record count,
 *                         u32 name length
 *   u32 chunk capacity    records per full chunk (last may be short)
 *   name bytes, zero pad  pad chosen so records land 16-byte aligned
 *   u32 header CRC-32     covers every byte above
 *   chunks                each: u32 record count, u32 CRC-32,
 *                         u64 instructions, then the packed records;
 *                         the CRC covers the two count fields and the
 *                         records, so every chunk is independently
 *                         decodable and a flipped bit is reported
 *                         with the chunk's byte offset
 *
 * Readers validate every length field against the bytes actually
 * remaining before any allocation, and chunk/record totals against
 * the header at end of stream. All failures are typed FatalErrors
 * (CorruptInput/Io), never crashes.
 *
 * Fault-injection sites (see util/fault_injection.hpp):
 *   "stream.open"        IoError — fail FileTraceSource's open/stat
 *   "stream.read"        IoError — fail a chunk read (per chunk)
 *   "stream.read.alloc"  AllocFail — chunk-buffer allocation fails
 *   "stream.mmap"        IoError — fail the mmap itself
 *   "stream.write"       IoError — fail a ChunkedTraceWriter append
 *   "stream.write.finish" IoError — fail the finalize/fsync/rename
 */

#ifndef MRP_TRACE_STREAM_READER_HPP
#define MRP_TRACE_STREAM_READER_HPP

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <exception>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/source.hpp"

namespace mrp::trace {

/** How FileTraceSource gets bytes off the disk. */
enum class FileMode {
    Buffered, //!< plain read(2)-style buffered reads (default)
    Mmap,     //!< memory-map; chunks are zero-copy spans into the map
};

/** Execution counters of a streaming source (perf introspection;
 * never part of deterministic reports). */
struct StreamStats
{
    std::uint64_t chunksDecoded = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t maxQueueDepth = 0; //!< decode-ahead only
};

/**
 * Streams a trace file chunk by chunk. v3 files stream in O(chunk)
 * memory (buffered: one reused buffer; mmap: zero-copy spans with
 * already-served pages dropped via madvise so residency stays
 * bounded). v1/v2 files have a monolithic payload and are loaded
 * whole on open — use v3 for anything that should not fit in RAM.
 */
class FileTraceSource final : public TraceSource
{
  public:
    explicit FileTraceSource(std::string path,
                             FileMode mode = FileMode::Buffered);
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource&) = delete;
    FileTraceSource& operator=(const FileTraceSource&) = delete;

    const std::string& name() const override { return name_; }
    InstCount instructions() const override { return instructions_; }
    std::span<const Record> nextChunk() override;
    void reset() override;

    const StreamStats& stats() const { return stats_; }
    FileMode mode() const { return mode_; }

  private:
    std::span<const Record> nextChunkBuffered();
    std::span<const Record> nextChunkMapped();
    void openBuffered();
    void openMapped();

    std::string path_;
    FileMode mode_;
    std::string name_;
    InstCount instructions_ = 0;
    std::uint64_t recordCount_ = 0;
    std::uint32_t chunkCapacity_ = 0;
    std::uint64_t fileBytes_ = 0;
    std::uint64_t payloadStart_ = 0; //!< offset of the first chunk

    // Stream position (both modes).
    std::uint64_t offset_ = 0;       //!< next unread byte
    std::uint64_t recordsServed_ = 0;
    InstCount instsServed_ = 0;

    // Buffered mode.
    std::unique_ptr<std::ifstream> file_;
    std::vector<Record> buffer_;

    // Mmap mode.
    const unsigned char* map_ = nullptr;
    std::uint64_t mapBytes_ = 0;
    std::uint64_t lastChunkStart_ = 0; //!< for madvise(DONTNEED)

    // v1/v2 fallback: the whole trace, served in chunks.
    std::unique_ptr<MaterializedTraceSource> legacy_;

    StreamStats stats_;
};

/**
 * Overlapped decoding: a background thread pulls chunks from any
 * inner source into a bounded queue (double-buffered by default), so
 * decode/generation cost hides behind simulation. The chunk sequence
 * — and therefore every simulation result — is identical to
 * consuming the inner source directly; only the wall-clock overlap
 * changes. Errors raised inside the worker (I/O faults, corrupt
 * chunks) surface on the consumer's nextChunk() at the position the
 * failing chunk would have been served. Destroying the source
 * mid-stream stops and joins the worker cleanly.
 */
class DecodeAheadSource final : public TraceSource
{
  public:
    explicit DecodeAheadSource(std::unique_ptr<TraceSource> inner,
                               std::size_t queue_depth = 2);
    ~DecodeAheadSource() override;

    DecodeAheadSource(const DecodeAheadSource&) = delete;
    DecodeAheadSource& operator=(const DecodeAheadSource&) = delete;

    const std::string& name() const override { return name_; }
    InstCount instructions() const override { return instructions_; }
    std::span<const Record> nextChunk() override;
    void reset() override;

    /** Queue high-water mark and chunk counts (execution artifact). */
    StreamStats stats() const;

  private:
    void start();
    void stop();
    void workerLoop();

    std::unique_ptr<TraceSource> inner_;
    std::string name_;
    InstCount instructions_ = 0;
    std::size_t depth_;

    mutable std::mutex mutex_;
    std::condition_variable canProduce_;
    std::condition_variable canConsume_;
    std::deque<std::vector<Record>> queue_;
    std::vector<std::vector<Record>> freelist_;
    std::vector<Record> current_; //!< chunk the consumer is holding
    std::exception_ptr error_;
    bool innerDone_ = false;
    bool stop_ = false;
    std::thread worker_;

    StreamStats stats_;
};

/**
 * Incremental v3 writer: appends chunks as they are produced, so a
 * trace larger than RAM can be generated and saved in one streaming
 * pass. Writes go to "<path>.tmp.<pid>"; finish() patches the header
 * totals, fsyncs, and renames into place, so a crash mid-write can
 * never leave a torn file at the destination path.
 */
class ChunkedTraceWriter
{
  public:
    ChunkedTraceWriter(std::string path, std::string trace_name,
                       std::size_t chunk_records = kDefaultChunkRecords);
    ~ChunkedTraceWriter(); //!< abandons (removes) the tmp if unfinished

    ChunkedTraceWriter(const ChunkedTraceWriter&) = delete;
    ChunkedTraceWriter& operator=(const ChunkedTraceWriter&) = delete;

    /**
     * Append @p records as one or more chunks (splits at the chunk
     * capacity; buffers partial chunks until full or finished).
     */
    void append(std::span<const Record> records);

    /** Drain @p source into the file chunk by chunk. */
    void appendAll(TraceSource& source);

    /** Flush, patch totals, fsync, rename into place. */
    void finish();

    InstCount instructions() const { return instructions_; }
    std::uint64_t recordCount() const { return recordCount_; }

  private:
    void writeChunk(const Record* records, std::size_t n);

    std::string path_;
    std::string tmpPath_;
    std::string name_;
    std::size_t chunkRecords_;
    std::FILE* file_ = nullptr;
    std::vector<Record> pending_;
    InstCount instructions_ = 0;
    std::uint64_t recordCount_ = 0;
    bool finished_ = false;
};

/** @name v3 stream/trace_io bridge (internal to the trace library)
 * Monolithic v3 serialization used by writeTrace/readTrace so the
 * public trace_io API handles every format revision. @{ */
void writeChunkedTrace(std::ostream& os, const Trace& trace,
                       std::size_t chunk_records = kDefaultChunkRecords);
Trace readChunkedTrace(std::istream& is, std::uint64_t available);
/** @} */

} // namespace mrp::trace

#endif // MRP_TRACE_STREAM_READER_HPP
