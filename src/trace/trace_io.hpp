/**
 * @file
 * Binary serialization of traces, so workloads can be generated once,
 * archived, or imported from external tools.
 *
 * Format (little-endian): a 32-byte header — magic "MRPT", u32
 * version, u64 instruction count, u64 record count, u32 name length —
 * followed by the name bytes and the packed 16-byte records.
 */

#ifndef MRP_TRACE_TRACE_IO_HPP
#define MRP_TRACE_TRACE_IO_HPP

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace mrp::trace {

/** Serialize @p trace to a stream; throws FatalError on I/O failure. */
void writeTrace(std::ostream& os, const Trace& trace);

/** Serialize to a file path. */
void saveTrace(const std::string& path, const Trace& trace);

/** Deserialize a trace; throws FatalError on corrupt input. */
Trace readTrace(std::istream& is);

/** Deserialize from a file path. */
Trace loadTrace(const std::string& path);

} // namespace mrp::trace

#endif // MRP_TRACE_TRACE_IO_HPP
