/**
 * @file
 * Binary serialization of traces, so workloads can be generated once,
 * archived, or imported from external tools.
 *
 * Format (little-endian): a 28-byte header — magic "MRPT", u32
 * version, u64 instruction count, u64 record count, u32 name length —
 * followed by the name bytes and the packed 16-byte records. Version 2
 * appends a u32 CRC-32 footer covering every preceding byte, so any
 * corruption of the payload is detected, not just implausible header
 * fields. Version 3 (the current writer default) stores the records
 * as independently-decodable chunks — per-chunk record counts and
 * CRC-32s — so files stream in bounded memory and corruption is
 * localized to one chunk (layout in trace/wire_format.hpp; streaming
 * access in trace/stream_reader.hpp). All versions are still read.
 *
 * The reader is hardened against corrupt input: the name-length and
 * record-count fields are bounded against the bytes actually remaining
 * in the stream before anything is allocated, and truncation errors
 * report the byte offset where the stream ran dry. All reader
 * failures throw FatalError with ErrorCode::CorruptInput (malformed
 * bytes) or ErrorCode::Io (open/read failures).
 *
 * Fault-injection sites (see util/fault_injection.hpp):
 *   "trace_io.write"       CorruptByte — flip a bit in the serialized
 *                          image before it reaches the stream
 *   "trace_io.write.io"    IoError — fail writeTrace
 *   "trace_io.save.open"   IoError — fail saveTrace's open
 *   "trace_io.read"        IoError — fail readTrace
 *   "trace_io.load.open"   IoError — fail loadTrace's open
 *   "trace_io.read.alloc"  AllocFail — record-buffer allocation fails
 */

#ifndef MRP_TRACE_TRACE_IO_HPP
#define MRP_TRACE_TRACE_IO_HPP

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace mrp::trace {

/** On-disk format revision to emit; readers accept all of them. */
enum class TraceFormat : std::uint32_t {
    V1 = 1, //!< header + payload, no checksum (legacy)
    V2 = 2, //!< adds the CRC-32 footer
    V3 = 3, //!< chunked payload, per-chunk CRC-32 (default)
};

/** Serialize @p trace to a stream; throws FatalError on I/O failure. */
void writeTrace(std::ostream& os, const Trace& trace,
                TraceFormat format = TraceFormat::V3);

/**
 * Serialize to a file path, atomically: the bytes land in a
 * same-directory temp file which is fsynced and renamed into place,
 * so a crashed writer can never leave a torn file at @p path.
 */
void saveTrace(const std::string& path, const Trace& trace,
               TraceFormat format = TraceFormat::V3);

/** Deserialize a trace; throws FatalError on corrupt input. */
Trace readTrace(std::istream& is);

/** Deserialize from a file path. */
Trace loadTrace(const std::string& path);

} // namespace mrp::trace

#endif // MRP_TRACE_TRACE_IO_HPP
