#include "trace/trace_io.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <vector>

#include "prof/profiler.hpp"
#include "trace/stream_reader.hpp"
#include "trace/wire_format.hpp"
#include "util/crc32.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"

namespace mrp::trace {

namespace {

using wire::kFooterBytes;
using wire::kMagic;
using wire::kMaxNameLen;

template <typename T>
void
append(std::string& buf, const T& v)
{
    const char* p = reinterpret_cast<const char*>(&v);
    buf.append(p, sizeof(T));
}

std::string
hex32(std::uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08x", v);
    return buf;
}

/**
 * Bounds-checked cursor over the trace image. Every read knows how
 * many bytes remain, so corrupt length fields fail fast — with the
 * offset where the stream ran dry — instead of driving unbounded
 * allocations or silent short reads.
 */
class BoundedReader
{
  public:
    BoundedReader(std::istream& is, std::uint64_t remaining)
        : is_(is), remaining_(remaining)
    {
    }

    std::uint64_t offset() const { return offset_; }
    std::uint64_t remaining() const { return remaining_; }

    void
    read(void* dst, std::uint64_t size, const char* what)
    {
        fatalIf(size > remaining_, ErrorCode::CorruptInput,
                std::string("truncated trace stream: need ") +
                    std::to_string(size) + " byte(s) of " + what +
                    " at offset " + std::to_string(offset_) +
                    ", only " + std::to_string(remaining_) +
                    " remain");
        is_.read(static_cast<char*>(dst),
                 static_cast<std::streamsize>(size));
        fatalIf(!is_, ErrorCode::Io,
                std::string("read failed at offset ") +
                    std::to_string(offset_) + " while reading " +
                    what);
        offset_ += size;
        remaining_ -= size;
    }

    template <typename T>
    T
    get(const char* what)
    {
        T v{};
        read(&v, sizeof(T), what);
        return v;
    }

  private:
    std::istream& is_;
    std::uint64_t offset_ = 0;
    std::uint64_t remaining_;
};

} // namespace

void
writeTrace(std::ostream& os, const Trace& trace, TraceFormat format)
{
    fault::checkIo("trace_io.write.io", "writing trace stream");
    const auto version = static_cast<std::uint32_t>(format);
    fatalIf(version < 1 || version > 3,
            "unsupported trace format version " +
                std::to_string(version));
    if (format == TraceFormat::V3) {
        writeChunkedTrace(os, trace);
        return;
    }

    // Serialize into memory first: the CRC covers the exact image, and
    // the write-corruption fault site can flip bits in any byte of it.
    std::string buf;
    static_assert(sizeof(Record) == 16, "record layout changed");
    buf.reserve(wire::kBaseHeaderBytes + trace.name().size() +
                trace.records().size() * sizeof(Record) +
                kFooterBytes);
    buf.append(kMagic, sizeof(kMagic));
    append(buf, version);
    append(buf, static_cast<std::uint64_t>(trace.instructions()));
    append(buf, static_cast<std::uint64_t>(trace.records().size()));
    append(buf, static_cast<std::uint32_t>(trace.name().size()));
    buf.append(trace.name().data(), trace.name().size());
    buf.append(reinterpret_cast<const char*>(trace.records().data()),
               trace.records().size() * sizeof(Record));
    if (format == TraceFormat::V2)
        append(buf, Crc32::of(buf.data(), buf.size()));

    fault::checkCorrupt("trace_io.write", buf.data(), buf.size());
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    fatalIf(!os, ErrorCode::Io, "failed writing trace stream");
}

void
saveTrace(const std::string& path, const Trace& trace,
          TraceFormat format)
{
    fault::checkIo("trace_io.save.open", "opening " + path);

    // Serialize first (any writer fault aborts before the filesystem
    // is touched), then tmp + fsync + rename so a crash mid-save can
    // never publish a torn file that still passes the header checks.
    std::ostringstream buf;
    writeTrace(buf, trace, format);
    const std::string bytes = buf.str();

    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    fatalIf(f == nullptr, ErrorCode::Io,
            "cannot open for writing: " + tmp);
    bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                  bytes.size() &&
              std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        fatal(ErrorCode::Io, "failed writing " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fatal(ErrorCode::Io, "cannot rename " + tmp + " to " + path);
    }
}

Trace
readTrace(std::istream& is)
{
    fault::checkIo("trace_io.read", "reading trace stream");

    // Measure the bytes actually available so every length field in
    // the header can be validated before it drives an allocation.
    const std::istream::pos_type start = is.tellg();
    fatalIf(start == std::istream::pos_type(-1), ErrorCode::Io,
            "trace stream is not seekable");
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    is.seekg(start);
    fatalIf(!is || end < start, ErrorCode::Io,
            "cannot determine trace stream size");
    const auto available = static_cast<std::uint64_t>(end - start);

    // Sniff the version to dispatch v3 (chunked) streams; short or
    // unrecognized prefixes fall through to the v1/v2 path for its
    // full diagnostics.
    if (available >= 8) {
        char head[8] = {};
        is.read(head, sizeof(head));
        fatalIf(!is, ErrorCode::Io, "read failed sniffing version");
        is.seekg(start);
        fatalIf(!is, ErrorCode::Io, "seek failed sniffing version");
        std::uint32_t sniffed = 0;
        std::memcpy(&sniffed, head + 4, sizeof(sniffed));
        if (std::memcmp(head, kMagic, sizeof(kMagic)) == 0 &&
            sniffed == 3)
            return readChunkedTrace(is, available);
    }
    BoundedReader in(is, available);

    char magic[4] = {};
    in.read(magic, sizeof(magic), "magic");
    fatalIf(std::memcmp(magic, kMagic, sizeof(kMagic)) != 0,
            ErrorCode::CorruptInput, "not a trace stream (bad magic)");
    const auto version = in.get<std::uint32_t>("version");
    fatalIf(version < 1 || version > 3, ErrorCode::CorruptInput,
            "unsupported trace version " + std::to_string(version));
    const auto instructions = in.get<std::uint64_t>("instruction count");
    const auto record_count = in.get<std::uint64_t>("record count");
    const auto name_len = in.get<std::uint32_t>("name length");

    const std::uint64_t footer = version >= 2 ? kFooterBytes : 0;
    fatalIf(name_len > kMaxNameLen, ErrorCode::CorruptInput,
            "implausible trace name length " + std::to_string(name_len) +
                " (max " + std::to_string(kMaxNameLen) + ")");
    fatalIf(name_len + footer > in.remaining(), ErrorCode::CorruptInput,
            "truncated trace stream: header claims a " +
                std::to_string(name_len) +
                "-byte name but only " +
                std::to_string(in.remaining()) +
                " byte(s) remain at offset " +
                std::to_string(in.offset()));
    const std::uint64_t payload_avail =
        in.remaining() - name_len - footer;
    fatalIf(record_count > payload_avail / sizeof(Record),
            ErrorCode::CorruptInput,
            "truncated trace stream: header claims " +
                std::to_string(record_count) + " records (" +
                std::to_string(record_count * sizeof(Record)) +
                " bytes) but only " + std::to_string(payload_avail) +
                " byte(s) remain at offset " +
                std::to_string(in.offset() + name_len));

    Crc32 crc;
    crc.update(magic, sizeof(magic));
    crc.update(&version, sizeof(version));
    crc.update(&instructions, sizeof(instructions));
    crc.update(&record_count, sizeof(record_count));
    crc.update(&name_len, sizeof(name_len));

    std::string name;
    std::vector<Record> records;
    try {
        fault::checkAlloc("trace_io.read.alloc");
        name.resize(name_len);
        records.resize(record_count);
    } catch (const std::bad_alloc&) {
        fatal(ErrorCode::Resource,
              "out of memory reading trace (" +
                  std::to_string(record_count) + " records)");
    }
    if (name_len > 0)
        in.read(name.data(), name_len, "name");
    crc.update(name.data(), name.size());
    if (record_count > 0)
        in.read(records.data(), record_count * sizeof(Record),
                "records");
    crc.update(records.data(), records.size() * sizeof(Record));

    if (version >= 2) {
        const auto stored = in.get<std::uint32_t>("CRC footer");
        fatalIf(stored != crc.value(), ErrorCode::CorruptInput,
                "trace CRC mismatch: stored " + hex32(stored) +
                    ", computed " + hex32(crc.value()));
    }

    // Validate the instruction count against the records.
    InstCount total = 0;
    for (const auto& r : records)
        total += r.count();
    fatalIf(total != instructions, ErrorCode::CorruptInput,
            "trace header instruction count does not match records");
    return Trace(std::move(name), std::move(records), instructions);
}

Trace
loadTrace(const std::string& path)
{
    MRP_PROF_SCOPE("trace.decode");
    fault::checkIo("trace_io.load.open", "opening " + path);
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, ErrorCode::Io, "cannot open for reading: " + path);
    return readTrace(is);
}

} // namespace mrp::trace
