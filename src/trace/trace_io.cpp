#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "util/logging.hpp"

namespace mrp::trace {

namespace {

constexpr char kMagic[4] = {'M', 'R', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
put(std::ostream& os, const T& v)
{
    os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T
get(std::istream& is)
{
    T v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(T));
    fatalIf(!is, "truncated trace stream");
    return v;
}

} // namespace

void
writeTrace(std::ostream& os, const Trace& trace)
{
    os.write(kMagic, sizeof(kMagic));
    put(os, kVersion);
    put(os, static_cast<std::uint64_t>(trace.instructions()));
    put(os, static_cast<std::uint64_t>(trace.records().size()));
    put(os, static_cast<std::uint32_t>(trace.name().size()));
    os.write(trace.name().data(),
             static_cast<std::streamsize>(trace.name().size()));
    static_assert(sizeof(Record) == 16, "record layout changed");
    os.write(reinterpret_cast<const char*>(trace.records().data()),
             static_cast<std::streamsize>(trace.records().size() *
                                          sizeof(Record)));
    fatalIf(!os, "failed writing trace stream");
}

void
saveTrace(const std::string& path, const Trace& trace)
{
    std::ofstream os(path, std::ios::binary);
    fatalIf(!os, "cannot open for writing: " + path);
    writeTrace(os, trace);
}

Trace
readTrace(std::istream& is)
{
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    fatalIf(!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0,
            "not a trace stream (bad magic)");
    const auto version = get<std::uint32_t>(is);
    fatalIf(version != kVersion, "unsupported trace version");
    const auto instructions = get<std::uint64_t>(is);
    const auto record_count = get<std::uint64_t>(is);
    const auto name_len = get<std::uint32_t>(is);
    fatalIf(name_len > 4096, "implausible trace name length");
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    fatalIf(!is, "truncated trace name");

    std::vector<Record> records(record_count);
    is.read(reinterpret_cast<char*>(records.data()),
            static_cast<std::streamsize>(record_count * sizeof(Record)));
    fatalIf(!is, "truncated trace records");

    // Validate the instruction count against the records.
    InstCount total = 0;
    for (const auto& r : records)
        total += r.count();
    fatalIf(total != instructions,
            "trace header instruction count does not match records");
    return Trace(std::move(name), std::move(records), instructions);
}

Trace
loadTrace(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, "cannot open for reading: " + path);
    return readTrace(is);
}

} // namespace mrp::trace
