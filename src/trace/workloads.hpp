/**
 * @file
 * The benchmark suite: 33 named synthetic workloads standing in for
 * the paper's 29 SPEC CPU 2006 + 3 CloudSuite + 1 mlpack benchmarks,
 * plus 15 held-out workloads standing in for the SPEC CPU 2017
 * simpoints of Table 3 (never used for tuning).
 *
 * Each benchmark has a stable name, a private data region, a private
 * code region, and a deterministic seed, so every call reproduces the
 * identical trace.
 */

#ifndef MRP_TRACE_WORKLOADS_HPP
#define MRP_TRACE_WORKLOADS_HPP

#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/types.hpp"

namespace mrp::trace {

/** Number of benchmarks in the main suite (33, as in the paper). */
unsigned suiteSize();

/** Number of held-out workloads (Table 3 stand-ins). */
unsigned heldOutSize();

/** Name of main-suite benchmark @p idx. */
const std::string& suiteName(unsigned idx);

/** Name of held-out workload @p idx. */
const std::string& heldOutName(unsigned idx);

/** All main-suite benchmark names, in index order. */
std::vector<std::string> suiteNames();

/**
 * Generate main-suite benchmark @p idx with approximately
 * @p instructions instructions. @p seed_salt re-seeds the generator:
 * 0 (the default) is the canonical, paper-default instance; any other
 * value draws an independent instance of the same workload family
 * (reuse-predictor variability studies, cross-validation of searched
 * configurations). Record the salt as DriverConfig::seed so reports
 * stay replayable.
 */
Trace makeSuiteTrace(unsigned idx, InstCount instructions,
                     std::uint64_t seed_salt = 0);

/** Generate held-out workload @p idx (salt as makeSuiteTrace). */
Trace makeHeldOutTrace(unsigned idx, InstCount instructions,
                       std::uint64_t seed_salt = 0);

} // namespace mrp::trace

#endif // MRP_TRACE_WORKLOADS_HPP
