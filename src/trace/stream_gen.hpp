/**
 * @file
 * Streaming workload families: generators that synthesize chunks on
 * demand instead of materializing a Trace, so corpora can be orders
 * of magnitude longer than RAM.
 *
 * All families derive from ChunkSource, which owns the chunk buffer,
 * the deterministic RNG, and the exact instruction budget: a source
 * built for N instructions emits exactly N (pads are clamped to the
 * remaining budget), so instructions() is exact up front, warmup
 * windows derived from it are exact, and a materialized copy of the
 * stream round-trips through trace_io's totals validation. The record
 * sequence depends only on the family parameters — never on the chunk
 * size — so any chunking of the same source is equivalent.
 *
 * The families mirror the traffic the paper's predictor meets at
 * scale rather than simpoint loops: Zipf-distributed key popularity
 * (the millions-of-users skew of serving caches), a block-I/O /
 * storage-cache request mix, and a phase-shifting combinator that
 * switches between child sources at a fixed instruction period.
 */

#ifndef MRP_TRACE_STREAM_GEN_HPP
#define MRP_TRACE_STREAM_GEN_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/source.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace mrp::trace {

/**
 * Base class for generator-driven sources. Derived families implement
 * step() — one loop iteration of the modelled program, emitted via the
 * protected helpers — and keep all state in members so the sequence is
 * independent of where chunk boundaries fall.
 */
class ChunkSource : public TraceSource
{
  public:
    const std::string& name() const override { return name_; }
    InstCount instructions() const override { return target_; }
    std::span<const Record> nextChunk() override;
    void reset() override;

  protected:
    ChunkSource(std::string name, InstCount target, Pc code_base,
                std::uint64_t seed, std::size_t chunk_records);

    /**
     * Emit one iteration of the workload. Must emit at least one
     * instruction whenever budget remains (emitMem on a fresh budget
     * always succeeds), or the stream cannot make progress.
     */
    virtual void step() = 0;

    /** Re-seed family state after the RNG has been rewound. */
    virtual void onReset() {}

    /** PC of code site @p idx (stable across chunks and resets). */
    Pc site(unsigned idx) const { return codeBase_ + 4 * idx; }

    InstCount remainingInsts() const { return target_ - emitted_; }

    /** Append a memory op; false iff the budget is exhausted. */
    bool emitMem(unsigned site_idx, Op op, Addr a, bool dep = false);

    /** Append up to @p count non-memory instructions (clamped). */
    void emitPad(std::uint64_t count);

    Rng& rng() { return rng_; }

  private:
    static constexpr unsigned kPadSite = 255;

    std::string name_;
    InstCount target_;
    Pc codeBase_;
    std::uint64_t seed_;
    std::size_t chunkRecords_;
    Rng rng_;
    std::vector<Record> buffer_;
    InstCount emitted_ = 0;
};

/**
 * Zipfian sampler over ranks [0, n): rank r is drawn with probability
 * proportional to 1/(r+1)^theta (Gray et al.'s bounded generator, the
 * YCSB formulation). Construction is O(n) to precompute the harmonic
 * normalizer; sampling is O(1).
 */
class ZipfDistribution
{
  public:
    ZipfDistribution(std::uint64_t n, double theta);

    /** Rank in [0, n); rank 0 is the most popular. */
    std::uint64_t sample(Rng& rng) const;

    /** Probability mass of the @p top most popular ranks. */
    double topShare(std::uint64_t top) const;

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double halfPowTheta_;
};

/** Zipf-popularity key-value traffic. */
struct ZipfParams
{
    std::string name = "zipf";
    InstCount instructions = 0;
    std::uint64_t seed = 1;
    Addr dataBase = 0;
    Pc codeBase = 0;
    std::uint64_t keys = 1u << 20;   //!< distinct cache-line keys
    double theta = 0.99;             //!< skew (0 = uniform)
    double storeProb = 0.05;         //!< fraction of writes
    unsigned padsPerAccess = 6;      //!< non-memory work per access
    std::size_t chunkRecords = kDefaultChunkRecords;
};

/**
 * Key-value store under Zipf popularity: every access picks a key by
 * Zipf rank and touches its cache line; popular keys are scattered
 * across the region by a multiplicative permutation so popularity and
 * address adjacency are uncorrelated. The head of the distribution is
 * cache-resident, the long tail is effectively streaming — live and
 * dead blocks share PCs, so reuse must be learned from address and
 * recency signals.
 */
std::unique_ptr<TraceSource> makeZipfSource(const ZipfParams& p);

/** Block-I/O / storage-cache request traffic. */
struct BlockIoParams
{
    std::string name = "blkio";
    InstCount instructions = 0;
    std::uint64_t seed = 1;
    Addr dataBase = 0;
    Pc codeBase = 0;
    Addr volumeBytes = Addr{1} << 32; //!< addressable volume
    double hotFraction = 0.02;        //!< hot-spot share of the volume
    double seqProb = 0.45;            //!< sequential-run requests
    double hotProb = 0.35;            //!< hot-spot requests
    double writeProb = 0.30;          //!< write requests
    unsigned maxRunBlocks = 64;       //!< longest sequential run
    unsigned padsPerRequest = 24;     //!< think time between requests
    std::size_t chunkRecords = kDefaultChunkRecords;
};

/**
 * Storage-cache traffic: a mix of long sequential scans (dead on
 * arrival), a small hot spot (reused), and uniform random requests,
 * with reads and writes issued from distinct PCs per request class.
 * Sequential runs defeat recency; the hot spot rewards protection —
 * the canonical scan-vs-point-access tension of block caches.
 */
std::unique_ptr<TraceSource> makeBlockIoSource(const BlockIoParams& p);

/**
 * Phase-shifting combinator: serves @p phase_insts instructions from
 * each child in round-robin order (children loop via reset() when
 * exhausted) until @p instructions have been emitted in total.
 * Switches happen at record granularity, so the stream exercises the
 * global-phase signals the paper's bias feature tracks. Children must
 * be non-empty sources; the combinator takes ownership.
 */
std::unique_ptr<TraceSource>
makePhaseMix(std::string name, InstCount instructions,
             InstCount phase_insts,
             std::vector<std::unique_ptr<TraceSource>> children,
             std::size_t chunk_records = kDefaultChunkRecords);

} // namespace mrp::trace

#endif // MRP_TRACE_STREAM_GEN_HPP
