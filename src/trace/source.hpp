/**
 * @file
 * The streaming trace substrate: a pull-based chunk iterator that
 * every trace producer implements, so consumers (drivers, benches,
 * sweep rungs) never require a whole trace in memory again.
 *
 * Contract (see DESIGN.md "The TraceSource contract"):
 *
 *  - nextChunk() returns the next run of records; an empty span means
 *    the stream is exhausted. Chunk granularity is an implementation
 *    choice — consumers must behave identically for any chunking of
 *    the same record sequence.
 *  - The returned span is valid only until the next call to
 *    nextChunk(), reset(), or the source's destruction. Consumers
 *    that need a record across a chunk boundary copy it (a Record is
 *    16 bytes by value).
 *  - reset() rewinds to the beginning; the subsequent chunk stream
 *    replays the identical record sequence (looped replay and
 *    two-pass offline policies depend on this).
 *  - instructions() is the total instruction count of the whole
 *    stream, known up front (headers carry it, generators target it
 *    exactly); drivers size warmup windows from it before pulling a
 *    single chunk.
 *  - Sources are single-consumer and not thread-safe; parallelism
 *    happens across runs, each with its own source instance.
 *
 * Determinism: a trace consumed through any TraceSource — fully
 * materialized, streamed cold from a file, or streamed with
 * decode-ahead — yields the same record sequence and therefore
 * byte-identical simulation reports.
 */

#ifndef MRP_TRACE_SOURCE_HPP
#define MRP_TRACE_SOURCE_HPP

#include <memory>
#include <span>
#include <string>
#include <utility>

#include "trace/trace.hpp"
#include "util/types.hpp"

namespace mrp::trace {

/** Default records per chunk (64Ki records = 1 MiB of trace). */
inline constexpr std::size_t kDefaultChunkRecords = 1u << 16;

/** Pull-based chunk iterator over one trace. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Benchmark name carried by the stream. */
    virtual const std::string& name() const = 0;

    /** Total instructions in the whole stream (known up front). */
    virtual InstCount instructions() const = 0;

    /**
     * The next run of records; empty at end of stream. The span is
     * invalidated by the next nextChunk()/reset() call.
     */
    virtual std::span<const Record> nextChunk() = 0;

    /** Rewind; the stream replays identically from the start. */
    virtual void reset() = 0;
};

/**
 * An in-memory trace served through the streaming interface — the
 * adapter that keeps Trace-by-value producers (the synthetic simpoint
 * generators, tests) inside the one-API world. Borrows by default;
 * can own the trace when the caller has nothing to keep it alive.
 */
class MaterializedTraceSource final : public TraceSource
{
  public:
    /** Borrow @p trace; the caller keeps it alive. */
    explicit MaterializedTraceSource(
        const Trace& trace, std::size_t chunk_records = kDefaultChunkRecords)
        : trace_(&trace), chunkRecords_(normalize(chunk_records))
    {
    }

    /** Take ownership of @p trace. */
    explicit MaterializedTraceSource(
        Trace&& trace, std::size_t chunk_records = kDefaultChunkRecords)
        : owned_(std::make_unique<Trace>(std::move(trace))),
          trace_(owned_.get()), chunkRecords_(normalize(chunk_records))
    {
    }

    const std::string& name() const override { return trace_->name(); }
    InstCount instructions() const override
    {
        return trace_->instructions();
    }

    std::span<const Record>
    nextChunk() override
    {
        const auto& recs = trace_->records();
        if (pos_ >= recs.size())
            return {};
        const std::size_t n =
            std::min(chunkRecords_, recs.size() - pos_);
        const std::span<const Record> out(recs.data() + pos_, n);
        pos_ += n;
        return out;
    }

    void reset() override { pos_ = 0; }

    /** The underlying trace (offline passes that must see it whole). */
    const Trace& trace() const { return *trace_; }

  private:
    static std::size_t
    normalize(std::size_t n)
    {
        return n == 0 ? kDefaultChunkRecords : n;
    }

    std::unique_ptr<Trace> owned_; //!< set iff owning
    const Trace* trace_;
    std::size_t chunkRecords_;
    std::size_t pos_ = 0;
};

/**
 * Drain @p source into an in-memory Trace.
 *
 * MEMORY COST: this buffers the whole stream — 16 bytes per record —
 * defeating the point of streaming. It exists for offline passes that
 * genuinely need random access to the full reference sequence
 * (Belady-style oracles, Hawkeye-style OPTgen training) and for
 * tests; everything else should consume chunks. The source is left
 * exhausted; reset() it to reuse.
 */
Trace materialize(TraceSource& source);

} // namespace mrp::trace

#endif // MRP_TRACE_SOURCE_HPP
