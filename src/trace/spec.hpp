/**
 * @file
 * TraceSpec: the one value type that names a trace — a suite or
 * held-out workload, a trace file, a streaming generator family, or a
 * borrowed in-memory Trace — and opens it as a TraceSource on demand.
 *
 * This collapses the historical three entry points (Trace by value,
 * workloads::* factories, mix::Mix index sets) into a single factory
 * used by drivers, RunRequest, and the sweep CorpusEvaluator. A spec
 * is cheap to copy and thread-agnostic; every open() call yields a
 * fresh, independent source, so concurrent runs each stream their own
 * cursor over the same spec.
 *
 * Identity: displayName() (the benchmark name carried by the opened
 * source) and instructions() are properties of the spec itself, known
 * without materializing anything — checkpoint/resume journals and
 * report rows key on them, so run identity never depends on HOW a
 * trace is delivered (materialized, streamed cold, decode-ahead).
 */

#ifndef MRP_TRACE_SPEC_HPP
#define MRP_TRACE_SPEC_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/source.hpp"
#include "trace/stream_gen.hpp"
#include "trace/stream_reader.hpp"
#include "util/json_reader.hpp"

namespace mrp::trace {

class TraceSpec
{
  public:
    enum class Kind {
        Borrowed, //!< non-owning pointer to a caller-held Trace
        Suite,    //!< workloads::makeSuiteTrace(index, instructions)
        HeldOut,  //!< workloads::makeHeldOutTrace(index, instructions)
        File,     //!< trace file (any format; v3 streams)
        Zipf,     //!< streaming Zipf key-popularity family
        BlockIo,  //!< streaming block-I/O / storage-cache family
        PhaseMix, //!< phase-shifting combinator over child specs
        Sampled,  //!< SHARDS-sampled decorator over one child spec
    };

    /** Delivery knobs — affect how bytes arrive, never what they are
     * (run identity and report bytes are invariant under all of
     * them). */
    struct OpenOptions
    {
        FileMode fileMode = FileMode::Buffered; //!< File kind only
        bool decodeAhead = false; //!< wrap in a DecodeAheadSource
        std::size_t chunkRecords = 0; //!< 0 = kDefaultChunkRecords
        std::size_t queueDepth = 2;   //!< decode-ahead buffers
    };

    /** Borrow @p t; the caller keeps it alive for the spec's life. */
    static TraceSpec borrowed(const Trace& t);
    /** @p seed re-salts the generator (0 = the canonical instance). */
    static TraceSpec suite(unsigned index, InstCount instructions,
                           std::uint64_t seed = 0);
    static TraceSpec heldOut(unsigned index, InstCount instructions,
                             std::uint64_t seed = 0);
    /** Peeks the file header for the name/instruction identity;
     * throws FatalError if @p path is unreadable or malformed. */
    static TraceSpec file(std::string path);
    static TraceSpec zipf(ZipfParams p);
    static TraceSpec blockIo(BlockIoParams p);
    static TraceSpec phaseMix(std::string name, InstCount instructions,
                              InstCount phase_insts,
                              std::vector<TraceSpec> children);
    /**
     * SHARDS-sampled view of @p child at rate 2^-rate_log2: memory
     * records whose block fails the hash threshold are rewritten to
     * one-instruction non-memory records (instructions() stays equal
     * to the child's), so the sampled stream drives a hierarchy scaled
     * by the same rate — the sweep's cheap rung. rate_log2 must be in
     * [1, 24); the child must be self-contained (not Borrowed).
     */
    static TraceSpec sampled(TraceSpec child, unsigned rate_log2);

    Kind kind() const { return kind_; }

    /** Benchmark name — equals the opened source's name(). */
    const std::string& displayName() const { return name_; }

    /** Total instructions of the stream, known without opening. Exact
     * for File/Borrowed specs and the streaming families; the legacy
     * Suite/HeldOut generators land within one loop iteration of this
     * target (they finish the iteration in flight). */
    InstCount instructions() const { return instructions_; }

    /** A spec identical except for the instruction target — how sweep
     * budget rungs derive shorter runs (generators regenerate at the
     * new length; prefix cuts would not reproduce generator output).
     * File and Borrowed specs cannot be resized and throw. */
    TraceSpec withInstructions(InstCount instructions) const;

    /** Open a fresh, independent source for this spec. */
    std::unique_ptr<TraceSource> open() const { return open({}); }
    std::unique_ptr<TraceSource> open(const OpenOptions& opts) const;

    /**
     * Self-contained JSON form of this spec, suitable for shipping a
     * run to a worker process: every generator parameter that affects
     * the record sequence is included, so fromJson() on any machine
     * opens a bit-identical stream. Borrowed specs point into this
     * process's memory and cannot cross a process boundary — they
     * throw FatalError(ErrorCode::Config).
     */
    std::string toJson() const;

    /** Rebuild a spec from toJson() output. @p what names the
     * document for error messages. Throws
     * FatalError(ErrorCode::CorruptInput) on schema violations and
     * whatever the named factory throws (e.g. Io for a missing trace
     * file). */
    static TraceSpec fromJson(const json::Value& v,
                              const std::string& what);

  private:
    TraceSpec() = default;

    Kind kind_ = Kind::Borrowed;
    std::string name_;
    InstCount instructions_ = 0;

    const Trace* borrowedTrace_ = nullptr;
    unsigned index_ = 0;          //!< Suite / HeldOut
    std::uint64_t seed_ = 0;      //!< Suite / HeldOut generator salt
    std::string path_;            //!< File
    ZipfParams zipf_;        //!< Zipf
    BlockIoParams blockIo_;  //!< BlockIo
    InstCount phaseInsts_ = 0;          //!< PhaseMix
    std::vector<TraceSpec> children_;   //!< PhaseMix / Sampled (one)
    unsigned rateLog2_ = 0;             //!< Sampled
};

} // namespace mrp::trace

#endif // MRP_TRACE_SPEC_HPP
