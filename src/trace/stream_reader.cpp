#include "trace/stream_reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <new>
#include <ostream>
#include <sstream>
#include <utility>

#include "prof/profiler.hpp"
#include "trace/trace_io.hpp"
#include "trace/wire_format.hpp"
#include "util/crc32.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"

namespace mrp::trace {

namespace {

using namespace wire;

template <typename T>
void
put(std::string& buf, const T& v)
{
    buf.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

std::string
hex32(std::uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08x", v);
    return buf;
}

/**
 * Bounds-checked cursor over either a stream or a memory range —
 * unifies header/chunk parsing across the buffered, mmap, and
 * monolithic read paths. Every read is validated against the bytes
 * remaining before it happens, so corrupt length fields fail with the
 * offset where the data ran dry instead of driving allocations.
 */
class ByteCursor
{
  public:
    ByteCursor(std::istream& is, std::uint64_t avail)
        : is_(&is), remaining_(avail)
    {
    }
    ByteCursor(const unsigned char* mem, std::uint64_t avail)
        : mem_(mem), remaining_(avail)
    {
    }

    std::uint64_t offset() const { return offset_; }
    std::uint64_t remaining() const { return remaining_; }

    /** Memory-mode only: pointer to the current position. */
    const unsigned char* ptr() const { return mem_ + offset_; }

    void
    read(void* dst, std::uint64_t size, const char* what)
    {
        require(size, what);
        if (mem_ != nullptr) {
            std::memcpy(dst, mem_ + offset_, size);
        } else {
            is_->read(static_cast<char*>(dst),
                      static_cast<std::streamsize>(size));
            fatalIf(!*is_, ErrorCode::Io,
                    std::string("read failed at offset ") +
                        std::to_string(offset_) + " while reading " +
                        what);
        }
        offset_ += size;
        remaining_ -= size;
    }

    /** Memory-mode only: consume @p size bytes without copying. */
    const unsigned char*
    take(std::uint64_t size, const char* what)
    {
        require(size, what);
        const unsigned char* p = mem_ + offset_;
        offset_ += size;
        remaining_ -= size;
        return p;
    }

    template <typename T>
    T
    get(const char* what)
    {
        T v{};
        read(&v, sizeof(T), what);
        return v;
    }

  private:
    void
    require(std::uint64_t size, const char* what)
    {
        fatalIf(size > remaining_, ErrorCode::CorruptInput,
                std::string("truncated trace stream: need ") +
                    std::to_string(size) + " byte(s) of " + what +
                    " at offset " + std::to_string(offset_) +
                    ", only " + std::to_string(remaining_) +
                    " remain");
    }

    std::istream* is_ = nullptr;
    const unsigned char* mem_ = nullptr;
    std::uint64_t offset_ = 0;
    std::uint64_t remaining_;
};

/** Decoded v3 header. */
struct V3Header
{
    std::string name;
    std::uint64_t instructions = 0;
    std::uint64_t recordCount = 0;
    std::uint32_t chunkCapacity = 0;
    std::uint64_t payloadStart = 0;
};

/**
 * Parse and CRC-validate a v3 header from @p in (positioned at the
 * magic). Throws CorruptInput on any malformed field.
 */
V3Header
parseV3Header(ByteCursor& in)
{
    char magic[4] = {};
    in.read(magic, sizeof(magic), "magic");
    fatalIf(std::memcmp(magic, kMagic, sizeof(kMagic)) != 0,
            ErrorCode::CorruptInput, "not a trace stream (bad magic)");
    const auto version = in.get<std::uint32_t>("version");
    fatalIf(version != 3, ErrorCode::CorruptInput,
            "expected a v3 chunked trace, found version " +
                std::to_string(version));

    V3Header h;
    h.instructions = in.get<std::uint64_t>("instruction count");
    h.recordCount = in.get<std::uint64_t>("record count");
    const auto name_len = in.get<std::uint32_t>("name length");
    h.chunkCapacity = in.get<std::uint32_t>("chunk capacity");
    fatalIf(name_len > kMaxNameLen, ErrorCode::CorruptInput,
            "implausible trace name length " +
                std::to_string(name_len) + " (max " +
                std::to_string(kMaxNameLen) + ")");
    fatalIf(h.chunkCapacity == 0 || h.chunkCapacity > kMaxChunkRecords,
            ErrorCode::CorruptInput,
            "implausible chunk capacity " +
                std::to_string(h.chunkCapacity) + " (max " +
                std::to_string(kMaxChunkRecords) + ")");

    Crc32 crc;
    crc.update(magic, sizeof(magic));
    crc.update(&version, sizeof(version));
    crc.update(&h.instructions, sizeof(h.instructions));
    crc.update(&h.recordCount, sizeof(h.recordCount));
    crc.update(&name_len, sizeof(name_len));
    crc.update(&h.chunkCapacity, sizeof(h.chunkCapacity));

    h.name.resize(name_len);
    if (name_len > 0)
        in.read(h.name.data(), name_len, "name");
    crc.update(h.name.data(), h.name.size());

    char pad[16] = {};
    const std::uint64_t pad_len = v3NamePad(name_len);
    if (pad_len > 0)
        in.read(pad, pad_len, "header padding");
    crc.update(pad, pad_len);

    const auto stored = in.get<std::uint32_t>("header CRC");
    fatalIf(stored != crc.value(), ErrorCode::CorruptInput,
            "trace header CRC mismatch: stored " + hex32(stored) +
                ", computed " + hex32(crc.value()));
    h.payloadStart = v3PayloadStart(name_len);
    return h;
}

/** Serialized v3 header (fixed fields, name, pad, CRC). */
std::string
v3HeaderBytes(const std::string& name, std::uint64_t instructions,
              std::uint64_t record_count, std::uint32_t chunk_capacity)
{
    fatalIf(name.size() > kMaxNameLen, ErrorCode::Config,
            "trace name too long for serialization: " +
                std::to_string(name.size()) + " bytes");
    std::string buf;
    buf.reserve(v3PayloadStart(name.size()));
    buf.append(kMagic, sizeof(kMagic));
    put(buf, static_cast<std::uint32_t>(3));
    put(buf, instructions);
    put(buf, record_count);
    put(buf, static_cast<std::uint32_t>(name.size()));
    put(buf, chunk_capacity);
    buf.append(name.data(), name.size());
    buf.append(v3NamePad(name.size()), '\0');
    put(buf, Crc32::of(buf.data(), buf.size()));
    return buf;
}

/** Chunk CRC: covers the record count, the instruction count, and the
 * record bytes — everything in the chunk except the CRC field. */
std::uint32_t
chunkCrc(std::uint32_t count, std::uint64_t instructions,
         const Record* records)
{
    Crc32 crc;
    crc.update(&count, sizeof(count));
    crc.update(&instructions, sizeof(instructions));
    crc.update(records, count * sizeof(Record));
    return crc.value();
}

InstCount
sumCounts(const Record* records, std::size_t n)
{
    InstCount total = 0;
    for (std::size_t i = 0; i < n; ++i)
        total += records[i].count();
    return total;
}

/** Fields of one chunk header, plus where it sits in the file. */
struct ChunkHead
{
    std::uint32_t count = 0;
    std::uint32_t crc = 0;
    std::uint64_t instructions = 0;
    std::uint64_t fileOffset = 0; //!< of the chunk header itself
};

/**
 * Read one chunk header from @p in and validate its record count
 * against the header totals and the bytes physically remaining.
 * @p base is the absolute file offset of the cursor's origin, so
 * diagnostics can name the real position.
 */
ChunkHead
readChunkHead(ByteCursor& in, const V3Header& h,
              std::uint64_t records_served, std::uint64_t base)
{
    ChunkHead c;
    c.fileOffset = base + in.offset();
    c.count = in.get<std::uint32_t>("chunk record count");
    c.crc = in.get<std::uint32_t>("chunk CRC");
    c.instructions = in.get<std::uint64_t>("chunk instruction count");
    fatalIf(c.count == 0 || c.count > h.chunkCapacity,
            ErrorCode::CorruptInput,
            "corrupt chunk at offset " +
                std::to_string(c.fileOffset) + ": record count " +
                std::to_string(c.count) + " outside [1, " +
                std::to_string(h.chunkCapacity) + "]");
    fatalIf(c.count > h.recordCount - records_served,
            ErrorCode::CorruptInput,
            "corrupt chunk at offset " +
                std::to_string(c.fileOffset) + ": record count " +
                std::to_string(c.count) + " exceeds the " +
                std::to_string(h.recordCount - records_served) +
                " record(s) the header has left");
    fatalIf(c.count * sizeof(Record) > in.remaining(),
            ErrorCode::CorruptInput,
            "truncated trace stream: chunk at offset " +
                std::to_string(c.fileOffset) + " claims " +
                std::to_string(c.count) + " record(s) but only " +
                std::to_string(in.remaining()) + " byte(s) remain");
    return c;
}

/** CRC + instruction-sum validation of a fully-read chunk. */
void
validateChunkPayload(const ChunkHead& c, const Record* records)
{
    const std::uint32_t computed =
        chunkCrc(c.count, c.instructions, records);
    fatalIf(computed != c.crc, ErrorCode::CorruptInput,
            "chunk CRC mismatch at offset " +
                std::to_string(c.fileOffset) + ": stored " +
                hex32(c.crc) + ", computed " + hex32(computed));
    fatalIf(sumCounts(records, c.count) != c.instructions,
            ErrorCode::CorruptInput,
            "chunk at offset " + std::to_string(c.fileOffset) +
                ": instruction count does not match its records");
}

/** End-of-stream totals check shared by every v3 reader. */
void
validateTotals(const V3Header& h, std::uint64_t records_served,
               InstCount insts_served, std::uint64_t trailing)
{
    fatalIf(trailing != 0, ErrorCode::CorruptInput,
            std::to_string(trailing) +
                " trailing byte(s) after the final chunk");
    fatalIf(records_served != h.recordCount, ErrorCode::CorruptInput,
            "trace ended with " + std::to_string(records_served) +
                " record(s); header claims " +
                std::to_string(h.recordCount));
    fatalIf(insts_served != h.instructions, ErrorCode::CorruptInput,
            "trace header instruction count does not match records");
}

/** Reject a record count that cannot fit in the remaining payload
 * bytes (chunk headers included) before anything is allocated. */
void
validatePayloadFits(const V3Header& h, std::uint64_t payload_avail)
{
    fatalIf(h.recordCount > payload_avail / sizeof(Record),
            ErrorCode::CorruptInput,
            "truncated trace stream: header claims " +
                std::to_string(h.recordCount) +
                " records but only " +
                std::to_string(payload_avail) +
                " payload byte(s) remain");
    const std::uint64_t chunks =
        (h.recordCount + h.chunkCapacity - 1) / h.chunkCapacity;
    fatalIf(h.recordCount * sizeof(Record) +
                    chunks * kChunkHeaderBytes >
                payload_avail,
            ErrorCode::CorruptInput,
            "truncated trace stream: " + std::to_string(chunks) +
                " chunk(s) of " + std::to_string(h.recordCount) +
                " records do not fit in " +
                std::to_string(payload_avail) +
                " payload byte(s)");
}

} // namespace

// ---------------------------------------------------------------------------
// Monolithic v3 bridge (writeTrace/readTrace dispatch here for V3).

void
writeChunkedTrace(std::ostream& os, const Trace& trace,
                  std::size_t chunk_records)
{
    const auto capacity = static_cast<std::uint32_t>(std::clamp(
        chunk_records, std::size_t{1}, std::size_t{kMaxChunkRecords}));
    const auto& records = trace.records();

    static_assert(sizeof(Record) == 16, "record layout changed");
    const std::uint64_t chunks =
        (records.size() + capacity - 1) / capacity;
    std::string buf = v3HeaderBytes(
        trace.name(), static_cast<std::uint64_t>(trace.instructions()),
        records.size(), capacity);
    buf.reserve(buf.size() + records.size() * sizeof(Record) +
                chunks * kChunkHeaderBytes);
    for (std::size_t pos = 0; pos < records.size(); pos += capacity) {
        const auto n = static_cast<std::uint32_t>(
            std::min<std::size_t>(capacity, records.size() - pos));
        const std::uint64_t insts = sumCounts(records.data() + pos, n);
        put(buf, n);
        put(buf, chunkCrc(n, insts, records.data() + pos));
        put(buf, insts);
        buf.append(
            reinterpret_cast<const char*>(records.data() + pos),
            n * sizeof(Record));
    }

    fault::checkCorrupt("trace_io.write", buf.data(), buf.size());
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    fatalIf(!os, ErrorCode::Io, "failed writing trace stream");
}

Trace
readChunkedTrace(std::istream& is, std::uint64_t available)
{
    ByteCursor in(is, available);
    const V3Header h = parseV3Header(in);
    validatePayloadFits(h, in.remaining());

    std::vector<Record> records;
    try {
        fault::checkAlloc("trace_io.read.alloc");
        records.resize(h.recordCount);
    } catch (const std::bad_alloc&) {
        fatal(ErrorCode::Resource,
              "out of memory reading trace (" +
                  std::to_string(h.recordCount) + " records)");
    }

    std::uint64_t served = 0;
    InstCount insts = 0;
    while (served < h.recordCount) {
        const ChunkHead c = readChunkHead(in, h, served, 0);
        in.read(records.data() + served, c.count * sizeof(Record),
                "chunk records");
        validateChunkPayload(c, records.data() + served);
        served += c.count;
        insts += c.instructions;
    }
    validateTotals(h, served, insts, in.remaining());
    return Trace(h.name, std::move(records), h.instructions);
}

// ---------------------------------------------------------------------------
// FileTraceSource

FileTraceSource::FileTraceSource(std::string path, FileMode mode)
    : path_(std::move(path)), mode_(mode)
{
    fault::checkIo("stream.open", "opening " + path_);

    // Sniff the version so v1/v2 files fall back to a full load.
    std::uint32_t version = 0;
    {
        std::ifstream is(path_, std::ios::binary);
        fatalIf(!is, ErrorCode::Io,
                "cannot open for reading: " + path_);
        char head[8] = {};
        is.read(head, sizeof(head));
        // Short or unrecognized files go through loadTrace below for
        // its full diagnostics.
        if (is && std::memcmp(head, kMagic, sizeof(kMagic)) == 0)
            std::memcpy(&version, head + 4, sizeof(version));
    }

    if (version != 3) {
        legacy_ = std::make_unique<MaterializedTraceSource>(
            loadTrace(path_));
        name_ = legacy_->name();
        instructions_ = legacy_->instructions();
        return;
    }
    if (mode_ == FileMode::Buffered)
        openBuffered();
    else
        openMapped();
}

FileTraceSource::~FileTraceSource()
{
    if (map_ != nullptr)
        ::munmap(const_cast<unsigned char*>(map_), mapBytes_);
}

void
FileTraceSource::openBuffered()
{
    file_ = std::make_unique<std::ifstream>(path_, std::ios::binary);
    fatalIf(!*file_, ErrorCode::Io,
            "cannot open for reading: " + path_);
    file_->seekg(0, std::ios::end);
    const auto end = file_->tellg();
    file_->seekg(0);
    fatalIf(!*file_ || end < std::istream::pos_type(0), ErrorCode::Io,
            "cannot determine size of " + path_);
    fileBytes_ = static_cast<std::uint64_t>(end);

    ByteCursor in(*file_, fileBytes_);
    const V3Header h = parseV3Header(in);
    validatePayloadFits(h, in.remaining());
    name_ = h.name;
    instructions_ = h.instructions;
    recordCount_ = h.recordCount;
    chunkCapacity_ = h.chunkCapacity;
    payloadStart_ = h.payloadStart;
    offset_ = payloadStart_;
}

void
FileTraceSource::openMapped()
{
    fault::checkIo("stream.mmap", "mapping " + path_);
    const int fd = ::open(path_.c_str(), O_RDONLY);
    fatalIf(fd < 0, ErrorCode::Io,
            "cannot open for reading: " + path_);
    struct ::stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        fatal(ErrorCode::Io, "cannot stat " + path_);
    }
    mapBytes_ = static_cast<std::uint64_t>(st.st_size);
    fileBytes_ = mapBytes_;
    if (mapBytes_ == 0) {
        ::close(fd);
        fatal(ErrorCode::CorruptInput, "empty trace file: " + path_);
    }
    void* map = ::mmap(nullptr, mapBytes_, PROT_READ, MAP_PRIVATE, fd,
                       0);
    ::close(fd);
    fatalIf(map == MAP_FAILED, ErrorCode::Io,
            "mmap failed for " + path_);
    map_ = static_cast<const unsigned char*>(map);
    ::madvise(const_cast<unsigned char*>(map_), mapBytes_,
              MADV_SEQUENTIAL);

    ByteCursor in(map_, mapBytes_);
    const V3Header h = parseV3Header(in);
    validatePayloadFits(h, in.remaining());
    name_ = h.name;
    instructions_ = h.instructions;
    recordCount_ = h.recordCount;
    chunkCapacity_ = h.chunkCapacity;
    payloadStart_ = h.payloadStart;
    offset_ = payloadStart_;
    lastChunkStart_ = 0;
}

std::span<const Record>
FileTraceSource::nextChunk()
{
    if (legacy_)
        return legacy_->nextChunk();
    MRP_PROF_SCOPE("trace.decode");
    return mode_ == FileMode::Buffered ? nextChunkBuffered()
                                       : nextChunkMapped();
}

std::span<const Record>
FileTraceSource::nextChunkBuffered()
{
    if (recordsServed_ == recordCount_) {
        V3Header h;
        h.recordCount = recordCount_;
        h.instructions = instructions_;
        validateTotals(h, recordsServed_, instsServed_,
                       fileBytes_ - offset_);
        return {};
    }
    fault::checkIo("stream.read",
                   "reading chunk at offset " +
                       std::to_string(offset_) + " of " + path_);

    V3Header h;
    h.recordCount = recordCount_;
    h.instructions = instructions_;
    h.chunkCapacity = chunkCapacity_;
    ByteCursor in(*file_, fileBytes_ - offset_);
    const ChunkHead c = readChunkHead(in, h, recordsServed_, offset_);
    try {
        fault::checkAlloc("stream.read.alloc");
        buffer_.resize(c.count);
    } catch (const std::bad_alloc&) {
        fatal(ErrorCode::Resource,
              "out of memory streaming trace chunk (" +
                  std::to_string(c.count) + " records)");
    }
    in.read(buffer_.data(), c.count * sizeof(Record),
            "chunk records");
    validateChunkPayload(c, buffer_.data());

    offset_ += in.offset();
    recordsServed_ += c.count;
    instsServed_ += c.instructions;
    stats_.chunksDecoded += 1;
    stats_.bytesRead += in.offset();
    return {buffer_.data(), buffer_.size()};
}

std::span<const Record>
FileTraceSource::nextChunkMapped()
{
    if (recordsServed_ == recordCount_) {
        V3Header h;
        h.recordCount = recordCount_;
        h.instructions = instructions_;
        validateTotals(h, recordsServed_, instsServed_,
                       fileBytes_ - offset_);
        return {};
    }
    fault::checkIo("stream.read",
                   "reading chunk at offset " +
                       std::to_string(offset_) + " of " + path_);

    // Drop the pages of already-served chunks so residency stays at
    // ~one chunk no matter how large the mapped file is; they refault
    // from the file cleanly after a reset().
    const auto page =
        static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    const std::uint64_t drop_end = offset_ & ~(page - 1);
    if (drop_end > lastChunkStart_) {
        ::madvise(const_cast<unsigned char*>(map_) + lastChunkStart_,
                  drop_end - lastChunkStart_, MADV_DONTNEED);
        lastChunkStart_ = drop_end;
    }

    V3Header h;
    h.recordCount = recordCount_;
    h.instructions = instructions_;
    h.chunkCapacity = chunkCapacity_;
    ByteCursor in(map_ + offset_, fileBytes_ - offset_);
    const ChunkHead c = readChunkHead(in, h, recordsServed_, offset_);
    const auto* records = reinterpret_cast<const Record*>(
        in.take(c.count * sizeof(Record), "chunk records"));
    validateChunkPayload(c, records);

    offset_ += in.offset();
    recordsServed_ += c.count;
    instsServed_ += c.instructions;
    stats_.chunksDecoded += 1;
    stats_.bytesRead += in.offset();
    return {records, c.count};
}

void
FileTraceSource::reset()
{
    if (legacy_) {
        legacy_->reset();
        return;
    }
    offset_ = payloadStart_;
    recordsServed_ = 0;
    instsServed_ = 0;
    lastChunkStart_ = 0;
    if (file_) {
        file_->clear();
        file_->seekg(static_cast<std::streamoff>(payloadStart_));
        fatalIf(!*file_, ErrorCode::Io,
                "seek failed rewinding " + path_);
    }
}

// ---------------------------------------------------------------------------
// DecodeAheadSource

DecodeAheadSource::DecodeAheadSource(
    std::unique_ptr<TraceSource> inner, std::size_t queue_depth)
    : inner_(std::move(inner)), name_(inner_->name()),
      instructions_(inner_->instructions()),
      depth_(std::max<std::size_t>(1, queue_depth))
{
    start();
}

DecodeAheadSource::~DecodeAheadSource() { stop(); }

void
DecodeAheadSource::start()
{
    stop_ = false;
    innerDone_ = false;
    error_ = nullptr;
    queue_.clear();
    worker_ = std::thread([this] { workerLoop(); });
}

void
DecodeAheadSource::stop()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    canProduce_.notify_all();
    canConsume_.notify_all();
    if (worker_.joinable())
        worker_.join();
}

void
DecodeAheadSource::workerLoop()
{
    try {
        for (;;) {
            std::vector<Record> buf;
            {
                std::lock_guard<std::mutex> lk(mutex_);
                if (stop_)
                    return;
                if (!freelist_.empty()) {
                    buf = std::move(freelist_.back());
                    freelist_.pop_back();
                }
            }
            // The worker is the only thread touching inner_ while it
            // runs; reset()/stop() join before touching it.
            const auto chunk = inner_->nextChunk();
            if (chunk.empty()) {
                std::lock_guard<std::mutex> lk(mutex_);
                innerDone_ = true;
                canConsume_.notify_one();
                return;
            }
            buf.assign(chunk.begin(), chunk.end());
            std::unique_lock<std::mutex> lk(mutex_);
            canProduce_.wait(lk, [this] {
                return stop_ || queue_.size() < depth_;
            });
            if (stop_)
                return;
            queue_.push_back(std::move(buf));
            stats_.chunksDecoded += 1;
            stats_.bytesRead += chunk.size() * sizeof(Record);
            stats_.maxQueueDepth = std::max<std::uint64_t>(
                stats_.maxQueueDepth, queue_.size());
            canConsume_.notify_one();
        }
    } catch (...) {
        std::lock_guard<std::mutex> lk(mutex_);
        error_ = std::current_exception();
        innerDone_ = true;
        canConsume_.notify_one();
    }
}

std::span<const Record>
DecodeAheadSource::nextChunk()
{
    std::unique_lock<std::mutex> lk(mutex_);
    if (!current_.empty()) {
        freelist_.push_back(std::move(current_));
        current_ = std::vector<Record>();
    }
    canConsume_.wait(lk,
                     [this] { return !queue_.empty() || innerDone_; });
    if (!queue_.empty()) {
        current_ = std::move(queue_.front());
        queue_.pop_front();
        canProduce_.notify_one();
        return {current_.data(), current_.size()};
    }
    // Queued good chunks drain before an error surfaces, so faults
    // appear at the position the failing chunk would have been served.
    if (error_)
        std::rethrow_exception(error_);
    return {};
}

void
DecodeAheadSource::reset()
{
    stop();
    inner_->reset();
    current_.clear();
    start();
}

StreamStats
DecodeAheadSource::stats() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return stats_;
}

// ---------------------------------------------------------------------------
// ChunkedTraceWriter

ChunkedTraceWriter::ChunkedTraceWriter(std::string path,
                                       std::string trace_name,
                                       std::size_t chunk_records)
    : path_(std::move(path)),
      tmpPath_(path_ + ".tmp." + std::to_string(::getpid())),
      name_(std::move(trace_name)),
      chunkRecords_(std::clamp(chunk_records, std::size_t{1},
                               std::size_t{kMaxChunkRecords}))
{
    fault::checkIo("stream.write", "creating " + tmpPath_);
    file_ = std::fopen(tmpPath_.c_str(), "wb");
    fatalIf(file_ == nullptr, ErrorCode::Io,
            "cannot open for writing: " + tmpPath_);
    // Placeholder header; finish() rewrites it with the real totals.
    const std::string header = v3HeaderBytes(
        name_, 0, 0, static_cast<std::uint32_t>(chunkRecords_));
    fatalIf(std::fwrite(header.data(), 1, header.size(), file_) !=
                header.size(),
            ErrorCode::Io, "failed writing header to " + tmpPath_);
}

ChunkedTraceWriter::~ChunkedTraceWriter()
{
    if (!finished_) {
        if (file_ != nullptr)
            std::fclose(file_);
        std::remove(tmpPath_.c_str());
    }
}

void
ChunkedTraceWriter::append(std::span<const Record> records)
{
    fatalIf(finished_, ErrorCode::Internal,
            "append() after finish() on " + path_);
    pending_.insert(pending_.end(), records.begin(), records.end());
    while (pending_.size() >= chunkRecords_) {
        writeChunk(pending_.data(), chunkRecords_);
        pending_.erase(pending_.begin(),
                       pending_.begin() +
                           static_cast<std::ptrdiff_t>(chunkRecords_));
    }
}

void
ChunkedTraceWriter::appendAll(TraceSource& source)
{
    for (;;) {
        const auto chunk = source.nextChunk();
        if (chunk.empty())
            break;
        append(chunk);
    }
}

void
ChunkedTraceWriter::writeChunk(const Record* records, std::size_t n)
{
    fault::checkIo("stream.write",
                   "appending a chunk to " + tmpPath_);
    const auto count = static_cast<std::uint32_t>(n);
    const std::uint64_t insts = sumCounts(records, n);
    std::string head;
    head.reserve(kChunkHeaderBytes);
    put(head, count);
    put(head, chunkCrc(count, insts, records));
    put(head, insts);
    fault::checkCorrupt("stream.write.corrupt", head.data(),
                        head.size());
    const bool ok =
        std::fwrite(head.data(), 1, head.size(), file_) ==
            head.size() &&
        std::fwrite(records, sizeof(Record), n, file_) == n;
    fatalIf(!ok, ErrorCode::Io,
            "failed writing chunk to " + tmpPath_);
    instructions_ += insts;
    recordCount_ += n;
}

void
ChunkedTraceWriter::finish()
{
    fatalIf(finished_, ErrorCode::Internal,
            "finish() called twice on " + path_);
    if (!pending_.empty()) {
        writeChunk(pending_.data(), pending_.size());
        pending_.clear();
    }
    fault::checkIo("stream.write.finish", "finalizing " + path_);

    // Patch the header with the real totals, then fsync before the
    // rename so a crash can never publish a torn file at path_.
    const std::string header = v3HeaderBytes(
        name_, static_cast<std::uint64_t>(instructions_), recordCount_,
        static_cast<std::uint32_t>(chunkRecords_));
    bool ok = std::fseek(file_, 0, SEEK_SET) == 0 &&
              std::fwrite(header.data(), 1, header.size(), file_) ==
                  header.size() &&
              std::fflush(file_) == 0 &&
              ::fsync(::fileno(file_)) == 0;
    ok = (std::fclose(file_) == 0) && ok;
    file_ = nullptr;
    if (!ok) {
        std::remove(tmpPath_.c_str());
        fatal(ErrorCode::Io, "failed finalizing " + tmpPath_);
    }
    if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0) {
        std::remove(tmpPath_.c_str());
        fatal(ErrorCode::Io,
              "cannot rename " + tmpPath_ + " to " + path_);
    }
    finished_ = true;

    // Best effort: persist the rename itself.
    const auto slash = path_.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path_.substr(0, slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

} // namespace mrp::trace
