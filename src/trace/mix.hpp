/**
 * @file
 * Multi-programmed workload mixes.
 *
 * Mixes follow the paper's methodology: each mix is 4 benchmarks drawn
 * uniformly at random *without replacement* from the main suite. The
 * paper generates 1000 mixes, uses the first 100 for training (feature
 * and threshold development) and the remaining 900 for reporting; we
 * generate the same split at a scaled-down count (see DESIGN.md §4).
 */

#ifndef MRP_TRACE_MIX_HPP
#define MRP_TRACE_MIX_HPP

#include <array>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace mrp::trace {

/** One 4-core mix: indices into the main benchmark suite. */
struct Mix
{
    std::array<unsigned, 4> benchmarks;

    /** Human-readable mix name, e.g.\ "thrash.2x+gups.fit+...". */
    std::string name() const;
};

/**
 * Deterministically generate @p count mixes with the paper's sampling
 * scheme (uniform, without replacement within a mix). The same seed
 * always yields the same mix list.
 */
std::vector<Mix> makeMixes(unsigned count, std::uint64_t seed = 0xF1E57A);

/**
 * The canonical train/test split: the first @p train_count mixes are
 * the training set, the remainder the test set (mirrors the paper's
 * first-100 / last-900 split).
 */
struct MixSplit
{
    std::vector<Mix> train;
    std::vector<Mix> test;
};

MixSplit makeMixSplit(unsigned train_count, unsigned test_count,
                      std::uint64_t seed = 0xF1E57A);

} // namespace mrp::trace

#endif // MRP_TRACE_MIX_HPP
