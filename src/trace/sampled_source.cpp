#include "trace/sampled_source.hpp"

#include "util/logging.hpp"

namespace mrp::trace {

SampledTraceSource::SampledTraceSource(
    std::unique_ptr<TraceSource> child, unsigned rate_log2)
    : child_(std::move(child)), rateLog2_(rate_log2)
{
    fatalIf(!child_, ErrorCode::Config,
            "sampled source needs a child source");
    fatalIf(rateLog2_ == 0 || rateLog2_ >= 24, ErrorCode::Config,
            "sampling rate log2 must be in [1, 24)");
    name_ = child_->name() + kSampledNameMarker +
            std::to_string(rateLog2_);
}

std::span<const Record>
SampledTraceSource::nextChunk()
{
    const auto in = child_->nextChunk();
    if (in.empty())
        return {};
    buf_.clear();
    buf_.reserve(in.size());
    for (const Record& r : in) {
        if (r.isMem() && !shardsKeep(blockAddr(r.addr()), rateLog2_)) {
            // Keep the record's one-instruction weight so the stream's
            // instruction identity (warmup windows, MPKI denominators)
            // is exactly the child's.
            buf_.push_back(Record::nonMem(r.pc(), 1));
            continue;
        }
        buf_.push_back(r);
    }
    return {buf_.data(), buf_.size()};
}

} // namespace mrp::trace
