/**
 * @file
 * Shared on-disk layout constants for the trace container formats —
 * the single source of truth used by the monolithic reader/writer
 * (trace_io.cpp) and the streaming substrate (stream_reader.cpp).
 * Internal to the trace library; not installed for consumers.
 *
 * All formats share the 28-byte base header: magic "MRPT", u32
 * version, u64 instruction count, u64 record count, u32 name length.
 * v1/v2 follow it directly with the name and packed records (v2 adds
 * a trailing CRC-32 over the whole image). v3 inserts a u32
 * chunk-capacity field after the base header, pads the name region so
 * the payload starts 16-byte aligned (records can be mmapped in
 * place), seals the header with its own CRC-32, and stores the
 * records as independently-decodable chunks:
 *
 *   u32 record count | u32 CRC-32 | u64 instructions | records...
 *
 * The chunk CRC covers the record count, the instruction count, and
 * the record bytes (everything but the CRC field itself).
 */

#ifndef MRP_TRACE_WIRE_FORMAT_HPP
#define MRP_TRACE_WIRE_FORMAT_HPP

#include <cstdint>

namespace mrp::trace::wire {

inline constexpr char kMagic[4] = {'M', 'R', 'P', 'T'};

/** Base header: magic + version + instructions + records + name len. */
inline constexpr std::uint64_t kBaseHeaderBytes = 28;

/** v3 adds the u32 chunk-capacity field to the fixed header. */
inline constexpr std::uint64_t kV3FixedBytes = kBaseHeaderBytes + 4;

/** v2 trailing CRC-32. */
inline constexpr std::uint64_t kFooterBytes = 4;

/** v3 per-chunk header: u32 count, u32 CRC, u64 instructions. */
inline constexpr std::uint64_t kChunkHeaderBytes = 16;

inline constexpr std::uint32_t kMaxNameLen = 4096;

/** Upper bound on records per chunk (64 MiB of records) — rejects
 * corrupt capacity fields before they size a buffer. */
inline constexpr std::uint32_t kMaxChunkRecords = 1u << 22;

/** Zero padding after the v3 name so that the header CRC that follows
 * ends on a 16-byte boundary (chunk headers and records then stay
 * 16-byte aligned for mmap). */
inline constexpr std::uint64_t
v3NamePad(std::uint64_t name_len)
{
    return (16 - ((kV3FixedBytes + name_len + 4) % 16)) % 16;
}

/** Offset of the first chunk in a v3 file. */
inline constexpr std::uint64_t
v3PayloadStart(std::uint64_t name_len)
{
    return kV3FixedBytes + name_len + v3NamePad(name_len) + 4;
}

} // namespace mrp::trace::wire

#endif // MRP_TRACE_WIRE_FORMAT_HPP
