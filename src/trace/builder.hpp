/**
 * @file
 * Incremental construction of synthetic traces.
 */

#ifndef MRP_TRACE_BUILDER_HPP
#define MRP_TRACE_BUILDER_HPP

#include <string>
#include <utility>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace mrp::trace {

/**
 * Builds a Trace record by record. The builder owns a deterministic RNG
 * and a PC-site allocator: generators refer to static "code sites" by
 * small indices, which map to stable, 4-byte-aligned PCs so that
 * PC-correlated reuse behaviour exists for predictors to learn.
 */
class TraceBuilder
{
  public:
    /**
     * @param name benchmark name carried by the resulting trace
     * @param code_base base PC of this benchmark's code region
     * @param seed RNG seed (every generated trace is deterministic)
     */
    TraceBuilder(std::string name, Pc code_base, std::uint64_t seed)
        : name_(std::move(name)), codeBase_(code_base), rng_(seed)
    {
    }

    /** PC of code site @p idx. */
    Pc site(unsigned idx) const { return codeBase_ + 4 * idx; }

    /** Append a load from @p site_idx to address @p a. */
    void
    load(unsigned site_idx, Addr a, bool dep = false)
    {
        records_.push_back(Record::memOp(site(site_idx), Op::Load, a, dep));
        ++instructions_;
    }

    /** Append a store from @p site_idx to address @p a. */
    void
    store(unsigned site_idx, Addr a, bool dep = false)
    {
        records_.push_back(Record::memOp(site(site_idx), Op::Store, a, dep));
        ++instructions_;
    }

    /** Append @p count non-memory instructions (compressed). */
    void
    pad(std::uint32_t count)
    {
        if (count == 0)
            return;
        records_.push_back(Record::nonMem(site(kPadSite), count));
        instructions_ += count;
    }

    /** Instructions emitted so far. */
    InstCount instructions() const { return instructions_; }

    /** Deterministic per-trace RNG for generators. */
    Rng& rng() { return rng_; }

    /** Finalize; the builder must not be used afterwards. */
    Trace
    build() &&
    {
        return Trace(std::move(name_), std::move(records_), instructions_);
    }

  private:
    static constexpr unsigned kPadSite = 255;

    std::string name_;
    Pc codeBase_;
    Rng rng_;
    std::vector<Record> records_;
    InstCount instructions_ = 0;
};

} // namespace mrp::trace

#endif // MRP_TRACE_BUILDER_HPP
