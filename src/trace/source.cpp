#include "trace/source.hpp"

#include <vector>

namespace mrp::trace {

Trace
materialize(TraceSource& source)
{
    std::vector<Record> records;
    InstCount total = 0;
    for (;;) {
        const auto chunk = source.nextChunk();
        if (chunk.empty())
            break;
        records.insert(records.end(), chunk.begin(), chunk.end());
        for (const auto& r : chunk)
            total += r.count();
    }
    return Trace(source.name(), std::move(records), total);
}

} // namespace mrp::trace
