/**
 * @file
 * The instruction-trace record format.
 *
 * A trace is a sequence of records. Memory records carry a PC and a
 * 48-bit byte address; runs of non-memory instructions are compressed
 * into a single record carrying a repeat count, since they only matter
 * to the timing model.
 */

#ifndef MRP_TRACE_RECORD_HPP
#define MRP_TRACE_RECORD_HPP

#include <cstdint>

#include "util/logging.hpp"
#include "util/types.hpp"

namespace mrp::trace {

/** Kind of a trace record. */
enum class Op : std::uint8_t {
    Load = 0,    //!< memory read
    Store = 1,   //!< memory write
    NonMem = 2,  //!< run of non-memory instructions (count in payload)
};

/**
 * One trace record, packed into 16 bytes. Memory records may be marked
 * dependent on the most recent preceding load, which serializes them in
 * the timing model (pointer chasing).
 */
class Record
{
  public:
    Record() : pc_(0), packed_(0) {}

    /** Build a load or store record. */
    static Record
    memOp(Pc pc, Op op, Addr addr, bool depends_on_prev_load = false)
    {
        panicIf(op == Op::NonMem, "memOp with non-memory opcode");
        Record r;
        r.pc_ = pc;
        r.packed_ = (addr & kAddrMask) |
                    (static_cast<std::uint64_t>(op) << kOpShift) |
                    (depends_on_prev_load ? kDepBit : 0);
        return r;
    }

    /** Build a compressed run of @p count non-memory instructions. */
    static Record
    nonMem(Pc pc, std::uint32_t count)
    {
        panicIf(count == 0, "empty non-memory run");
        Record r;
        r.pc_ = pc;
        r.packed_ = (static_cast<std::uint64_t>(count) & kAddrMask) |
                    (static_cast<std::uint64_t>(Op::NonMem) << kOpShift);
        return r;
    }

    Pc pc() const { return pc_; }

    Op
    op() const
    {
        return static_cast<Op>((packed_ >> kOpShift) & 0x3);
    }

    bool isMem() const { return op() != Op::NonMem; }

    /** Byte address of a memory record. */
    Addr
    addr() const
    {
        panicIf(!isMem(), "addr() on non-memory record");
        return packed_ & kAddrMask;
    }

    /** Instruction count covered by this record. */
    std::uint32_t
    count() const
    {
        return isMem() ? 1
                       : static_cast<std::uint32_t>(packed_ & kAddrMask);
    }

    /** True if this memory op must wait for the previous load's data. */
    bool dependsOnPrevLoad() const { return (packed_ & kDepBit) != 0; }

  private:
    static constexpr std::uint64_t kAddrMask = (1ull << 48) - 1;
    static constexpr unsigned kOpShift = 48;
    static constexpr std::uint64_t kDepBit = 1ull << 50;

    Pc pc_;
    std::uint64_t packed_;
};

} // namespace mrp::trace

#endif // MRP_TRACE_RECORD_HPP
