#include "trace/stream_gen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "prof/profiler.hpp"
#include "util/logging.hpp"

namespace mrp::trace {

namespace {

constexpr Addr kBlockBytes = 64;

/** Odd multiplier near n/phi and coprime with n — scatters sequential
 * indices across [0, n) with no correlation between neighbours. */
std::uint64_t
scatterMultiplier(std::uint64_t n)
{
    std::uint64_t step = (n * 1618) / 2618;
    step |= 1;
    while (std::gcd(step, n) != 1)
        step += 2;
    return step;
}

} // namespace

// ---------------------------------------------------------------------------
// ChunkSource

ChunkSource::ChunkSource(std::string name, InstCount target,
                         Pc code_base, std::uint64_t seed,
                         std::size_t chunk_records)
    : name_(std::move(name)), target_(target), codeBase_(code_base),
      seed_(seed),
      chunkRecords_(chunk_records == 0 ? kDefaultChunkRecords
                                       : chunk_records),
      rng_(seed)
{
    fatalIf(target_ == 0, ErrorCode::Config,
            "streaming source '" + name_ +
                "' needs a nonzero instruction target");
}

std::span<const Record>
ChunkSource::nextChunk()
{
    if (emitted_ >= target_)
        return {};
    MRP_PROF_SCOPE("trace.generate");
    buffer_.clear();
    while (emitted_ < target_ && buffer_.size() < chunkRecords_)
        step();
    return {buffer_.data(), buffer_.size()};
}

void
ChunkSource::reset()
{
    emitted_ = 0;
    rng_ = Rng(seed_);
    onReset();
}

bool
ChunkSource::emitMem(unsigned site_idx, Op op, Addr a, bool dep)
{
    if (emitted_ >= target_)
        return false;
    buffer_.push_back(Record::memOp(site(site_idx), op, a, dep));
    ++emitted_;
    return true;
}

void
ChunkSource::emitPad(std::uint64_t count)
{
    count = std::min<std::uint64_t>(count, target_ - emitted_);
    count = std::min<std::uint64_t>(
        count, std::numeric_limits<std::uint32_t>::max());
    if (count == 0)
        return;
    buffer_.push_back(Record::nonMem(
        site(kPadSite), static_cast<std::uint32_t>(count)));
    emitted_ += count;
}

// ---------------------------------------------------------------------------
// Zipf

ZipfDistribution::ZipfDistribution(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    fatalIf(n_ == 0, ErrorCode::Config,
            "Zipf distribution needs at least one rank");
    fatalIf(theta_ < 0.0 || theta_ >= 1.0, ErrorCode::Config,
            "Zipf theta must be in [0, 1), got " +
                std::to_string(theta_));
    double zetan = 0.0;
    for (std::uint64_t i = 1; i <= n_; ++i)
        zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
    zetan_ = zetan;
    const double zeta2 =
        1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                           1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
    halfPowTheta_ = std::pow(0.5, theta_);
}

std::uint64_t
ZipfDistribution::sample(Rng& rng) const
{
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + halfPowTheta_)
        return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return std::min(rank, n_ - 1);
}

double
ZipfDistribution::topShare(std::uint64_t top) const
{
    top = std::min(top, n_);
    double mass = 0.0;
    for (std::uint64_t i = 1; i <= top; ++i)
        mass += 1.0 / std::pow(static_cast<double>(i), theta_);
    return mass / zetan_;
}

namespace {

class ZipfSource final : public ChunkSource
{
  public:
    explicit ZipfSource(const ZipfParams& p)
        : ChunkSource(p.name, p.instructions, p.codeBase, p.seed,
                      p.chunkRecords),
          p_(p), zipf_(p.keys, p.theta),
          scatter_(scatterMultiplier(p.keys))
    {
    }

  private:
    void
    step() override
    {
        const std::uint64_t rank = zipf_.sample(rng());
        // Scatter ranks so popularity is uncorrelated with address.
        const std::uint64_t key = (rank * scatter_) % p_.keys;
        const Addr a = p_.dataBase + key * kBlockBytes;
        const bool store = rng().uniform() < p_.storeProb;
        emitMem(store ? 1 : 0, store ? Op::Store : Op::Load, a);
        emitPad(p_.padsPerAccess);
    }

    ZipfParams p_;
    ZipfDistribution zipf_;
    std::uint64_t scatter_;
};

} // namespace

std::unique_ptr<TraceSource>
makeZipfSource(const ZipfParams& p)
{
    return std::make_unique<ZipfSource>(p);
}

// ---------------------------------------------------------------------------
// Block I/O

namespace {

class BlockIoSource final : public ChunkSource
{
  public:
    explicit BlockIoSource(const BlockIoParams& p)
        : ChunkSource(p.name, p.instructions, p.codeBase, p.seed,
                      p.chunkRecords),
          p_(p),
          volumeBlocks_(std::max<std::uint64_t>(
              1, p.volumeBytes / kBlockBytes)),
          hotBlocks_(std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(
                     static_cast<double>(volumeBlocks_) *
                     p.hotFraction)))
    {
    }

  private:
    // Request classes get distinct PC sites (reads/writes split), so
    // the PC feature can learn that scans are dead and hot-spot
    // touches are live.
    enum Site : unsigned {
        kSeqRead = 0,
        kSeqWrite = 1,
        kHotRead = 2,
        kHotWrite = 3,
        kRandRead = 4,
        kRandWrite = 5,
    };

    void
    step() override
    {
        if (runLeft_ == 0)
            beginRequest();
        emitMem(siteFor(), write_ ? Op::Store : Op::Load,
                p_.dataBase + lba_ * kBlockBytes);
        lba_ = (lba_ + 1) % volumeBlocks_;
        --runLeft_;
    }

    void
    beginRequest()
    {
        emitPad(p_.padsPerRequest);
        const double r = rng().uniform();
        if (r < p_.seqProb) {
            kind_ = kSeq;
            lba_ = rng().below(volumeBlocks_);
            runLeft_ = 8 + rng().below(
                               std::max(1u, p_.maxRunBlocks - 8) + 1);
        } else if (r < p_.seqProb + p_.hotProb) {
            kind_ = kHot;
            lba_ = rng().below(hotBlocks_);
            runLeft_ = 1 + rng().below(4);
        } else {
            kind_ = kRand;
            lba_ = rng().below(volumeBlocks_);
            runLeft_ = 1 + rng().below(4);
        }
        write_ = rng().uniform() < p_.writeProb;
    }

    unsigned
    siteFor() const
    {
        switch (kind_) {
        case kSeq: return write_ ? kSeqWrite : kSeqRead;
        case kHot: return write_ ? kHotWrite : kHotRead;
        default: return write_ ? kRandWrite : kRandRead;
        }
    }

    void
    onReset() override
    {
        runLeft_ = 0;
        lba_ = 0;
        write_ = false;
        kind_ = kRand;
    }

    enum Kind { kSeq, kHot, kRand };

    BlockIoParams p_;
    std::uint64_t volumeBlocks_;
    std::uint64_t hotBlocks_;
    std::uint64_t lba_ = 0;
    std::uint64_t runLeft_ = 0;
    bool write_ = false;
    Kind kind_ = kRand;
};

} // namespace

std::unique_ptr<TraceSource>
makeBlockIoSource(const BlockIoParams& p)
{
    return std::make_unique<BlockIoSource>(p);
}

// ---------------------------------------------------------------------------
// Phase mix

namespace {

class PhaseMixSource final : public TraceSource
{
  public:
    PhaseMixSource(std::string name, InstCount target,
                   InstCount phase_insts,
                   std::vector<std::unique_ptr<TraceSource>> children,
                   std::size_t chunk_records)
        : name_(std::move(name)), target_(target),
          phaseInsts_(phase_insts),
          chunkRecords_(chunk_records == 0 ? kDefaultChunkRecords
                                           : chunk_records),
          children_(std::move(children)),
          pending_(children_.size()), pendingIdx_(children_.size(), 0)
    {
        fatalIf(target_ == 0, ErrorCode::Config,
                "phase mix '" + name_ +
                    "' needs a nonzero instruction target");
        fatalIf(phaseInsts_ == 0, ErrorCode::Config,
                "phase mix '" + name_ +
                    "' needs a nonzero phase length");
        fatalIf(children_.empty(), ErrorCode::Config,
                "phase mix '" + name_ + "' needs at least one child");
        for (const auto& c : children_)
            fatalIf(c == nullptr, ErrorCode::Config,
                    "phase mix '" + name_ + "' has a null child");
    }

    const std::string& name() const override { return name_; }
    InstCount instructions() const override { return target_; }

    std::span<const Record>
    nextChunk() override
    {
        if (emitted_ >= target_)
            return {};
        MRP_PROF_SCOPE("trace.generate");
        buffer_.clear();
        while (emitted_ < target_ &&
               buffer_.size() < chunkRecords_) {
            // Refill the current child's pending span. The span stays
            // valid while other children advance — only that child's
            // own nextChunk() invalidates it.
            if (pendingIdx_[cur_] >= pending_[cur_].size()) {
                auto chunk = children_[cur_]->nextChunk();
                if (chunk.empty()) { // child exhausted: loop it
                    children_[cur_]->reset();
                    chunk = children_[cur_]->nextChunk();
                    fatalIf(chunk.empty(), ErrorCode::Config,
                            "phase mix child '" +
                                children_[cur_]->name() +
                                "' produced an empty stream");
                }
                pending_[cur_] = chunk;
                pendingIdx_[cur_] = 0;
            }
            Record r = pending_[cur_][pendingIdx_[cur_]++];
            InstCount cnt = r.count();
            const InstCount room = target_ - emitted_;
            if (cnt > room) {
                // Only pads carry count > 1; truncate to the budget.
                r = Record::nonMem(r.pc(),
                                   static_cast<std::uint32_t>(room));
                cnt = room;
            }
            buffer_.push_back(r);
            emitted_ += cnt;
            phaseEmitted_ += cnt;
            if (phaseEmitted_ >= phaseInsts_) {
                phaseEmitted_ = 0;
                cur_ = (cur_ + 1) % children_.size();
            }
        }
        return {buffer_.data(), buffer_.size()};
    }

    void
    reset() override
    {
        for (auto& c : children_)
            c->reset();
        std::fill(pending_.begin(), pending_.end(),
                  std::span<const Record>{});
        std::fill(pendingIdx_.begin(), pendingIdx_.end(),
                  std::size_t{0});
        emitted_ = 0;
        phaseEmitted_ = 0;
        cur_ = 0;
    }

  private:
    std::string name_;
    InstCount target_;
    InstCount phaseInsts_;
    std::size_t chunkRecords_;
    std::vector<std::unique_ptr<TraceSource>> children_;
    std::vector<std::span<const Record>> pending_;
    std::vector<std::size_t> pendingIdx_;
    std::vector<Record> buffer_;
    InstCount emitted_ = 0;
    InstCount phaseEmitted_ = 0;
    std::size_t cur_ = 0;
};

} // namespace

std::unique_ptr<TraceSource>
makePhaseMix(std::string name, InstCount instructions,
             InstCount phase_insts,
             std::vector<std::unique_ptr<TraceSource>> children,
             std::size_t chunk_records)
{
    return std::make_unique<PhaseMixSource>(
        std::move(name), instructions, phase_insts,
        std::move(children), chunk_records);
}

} // namespace mrp::trace
