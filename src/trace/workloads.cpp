#include "trace/workloads.hpp"

#include <functional>

#include "prof/profiler.hpp"
#include "trace/generators.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace mrp::trace {

namespace {

constexpr Addr KiB = 1024;
constexpr Addr MiB = 1024 * 1024;

using GenFn = std::function<Trace(const GenParams&)>;

struct BenchDef
{
    const char* name;
    GenFn gen;
};

/**
 * The main suite. Sizes are chosen against the paper's 2MB single-
 * thread LLC (a 4-core mix of these against the 8MB shared LLC keeps
 * the same per-core pressure). The population is deliberately skewed
 * the way SPEC is: a good number of low-MPKI cache-resident programs,
 * a band of LRU-adversarial thrash/scan programs where management
 * pays, feature-specific programs exercising each of the paper's
 * seven feature types, and latency-bound pointer chasers. Hot regions
 * that smart policies should protect are sized a bit under the 2MB
 * LLC; polluting streams push total pressure past it.
 */
const std::vector<BenchDef>&
suiteDefs()
{
    static const std::vector<BenchDef> defs = {
        // --- cache-resident / low-MPKI -------------------------------
        {"compute.small", [](const GenParams& p) {
             return makeBranchyCompute(p, 128 * KiB, 12); }},
        {"compute.med", [](const GenParams& p) {
             return makeBranchyCompute(p, 192 * KiB, 8); }},
        {"nest.l2", [](const GenParams& p) {
             return makeLoopNest(p, 16 * KiB, 896 * KiB, 16 * MiB, 6); }},
        {"drift.slow", [](const GenParams& p) {
             return makeDriftingWs(p, 512 * KiB, 8 * MiB, 64, 6); }},
        {"gups.fit", [](const GenParams& p) {
             return makeGups(p, 1536 * KiB, 6); }},
        {"stream.light", [](const GenParams& p) {
             return makeStream(p, 16 * MiB, 14); }},
        // --- LRU-adversarial: thrash / scans / phases ----------------
        {"thrash.1p5x", [](const GenParams& p) {
             return makeCyclicThrash(p, 3 * MiB, 6); }},
        {"thrash.2x", [](const GenParams& p) {
             return makeCyclicThrash(p, 4 * MiB, 6); }},
        {"thrash.3x", [](const GenParams& p) {
             return makeCyclicThrash(p, 6 * MiB, 8); }},
        {"scan.a", [](const GenParams& p) {
             return makeScanPollute(p, 1792 * KiB, 8 * MiB, 1024, 4); }},
        {"scan.b", [](const GenParams& p) {
             return makeScanPollute(p, 1536 * KiB, 16 * MiB, 2048, 3); }},
        {"scan.c", [](const GenParams& p) {
             return makeScanPollute(p, 1792 * KiB, 12 * MiB, 512, 5); }},
        {"phase.ab", [](const GenParams& p) {
             return makePhased(p, 1280 * KiB, 4 * MiB, 200000, 5); }},
        {"phase.fast", [](const GenParams& p) {
             return makePhased(p, 1536 * KiB, 6 * MiB, 80000, 4); }},
        // --- feature-specific reuse signals --------------------------
        {"mixpc.hi", [](const GenParams& p) {
             return makeSamePcMixed(p, 1792 * KiB, 16 * MiB, 0.5, 5); }},
        {"mixpc.lo", [](const GenParams& p) {
             return makeSamePcMixed(p, 1536 * KiB, 24 * MiB, 0.65, 4); }},
        {"field.a", [](const GenParams& p) {
             return makeFieldAccess(p, 12 * MiB, 1792 * KiB, 0.5, 4); }},
        {"field.b", [](const GenParams& p) {
             return makeFieldAccess(p, 8 * MiB, 1536 * KiB, 0.55, 5); }},
        {"burst.4", [](const GenParams& p) {
             return makeBurst(p, 8 * MiB, 768 * KiB, 4, 3); }},
        {"burst.8", [](const GenParams& p) {
             return makeBurst(p, 12 * MiB, 512 * KiB, 8, 2); }},
        {"sets.hotcold", [](const GenParams& p) {
             return makeHotColdSets(p, 1792 * KiB, 8 * MiB, 4); }},
        {"prodcons.a", [](const GenParams& p) {
             return makeProducerConsumer(p, 256 * KiB, 9, 3); }},
        // --- latency-bound pointer chasing ----------------------------
        {"chase.4m", [](const GenParams& p) {
             return makePointerChase(p, 4 * MiB, 4); }},
        {"chase.12m", [](const GenParams& p) {
             return makePointerChase(p, 12 * MiB, 6); }},
        {"chase.2m", [](const GenParams& p) {
             return makePointerChase(p, 2 * MiB, 4); }},
        {"gups.2x", [](const GenParams& p) {
             return makeGups(p, 4 * MiB, 6); }},
        // --- bandwidth / streaming heavy ------------------------------
        {"stream.heavy", [](const GenParams& p) {
             return makeStream(p, 32 * MiB, 3); }},
        {"stream.mid", [](const GenParams& p) {
             return makeStream(p, 8 * MiB, 4); }},
        {"prodcons.b", [](const GenParams& p) {
             return makeProducerConsumer(p, 384 * KiB, 7, 4); }},
        {"nest.big", [](const GenParams& p) {
             return makeLoopNest(p, 32 * KiB, 1536 * KiB, 32 * MiB, 5); }},
        // --- remaining mixture ----------------------------------------
        {"drift.fast", [](const GenParams& p) {
             return makeDriftingWs(p, MiB, 16 * MiB, 16, 5); }},
        {"gups.4x", [](const GenParams& p) {
             return makeGups(p, 8 * MiB, 8); }},
        {"thrash.1p2x", [](const GenParams& p) {
             return makeCyclicThrash(p, 2560 * KiB, 6); }},
    };
    return defs;
}

/**
 * Held-out workloads: same families, disjoint seeds and parameter
 * points, never consulted while tuning thresholds or features.
 */
const std::vector<BenchDef>&
heldOutDefs()
{
    static const std::vector<BenchDef> defs = {
        {"ho.thrash.2p5x", [](const GenParams& p) {
             return makeCyclicThrash(p, 5 * MiB, 6); }},
        {"ho.scan.d", [](const GenParams& p) {
             return makeScanPollute(p, 1664 * KiB, 10 * MiB, 768, 4); }},
        {"ho.mixpc.mid", [](const GenParams& p) {
             return makeSamePcMixed(p, 1664 * KiB, 20 * MiB, 0.55, 4); }},
        {"ho.field.c", [](const GenParams& p) {
             return makeFieldAccess(p, 10 * MiB, 1664 * KiB, 0.5, 4); }},
        {"ho.burst.6", [](const GenParams& p) {
             return makeBurst(p, 10 * MiB, 640 * KiB, 6, 2); }},
        {"ho.chase.6m", [](const GenParams& p) {
             return makePointerChase(p, 6 * MiB, 5); }},
        {"ho.prodcons.c", [](const GenParams& p) {
             return makeProducerConsumer(p, 320 * KiB, 8, 3); }},
        {"ho.phase.slow", [](const GenParams& p) {
             return makePhased(p, 1408 * KiB, 3 * MiB, 250000, 4); }},
        {"ho.stream.xl", [](const GenParams& p) {
             return makeStream(p, 24 * MiB, 3); }},
        {"ho.gups.3x", [](const GenParams& p) {
             return makeGups(p, 6 * MiB, 6); }},
        {"ho.nest.mid", [](const GenParams& p) {
             return makeLoopNest(p, 24 * KiB, 1280 * KiB, 24 * MiB, 5); }},
        {"ho.drift.mid", [](const GenParams& p) {
             return makeDriftingWs(p, 768 * KiB, 12 * MiB, 32, 5); }},
        {"ho.sets.hotcold2", [](const GenParams& p) {
             return makeHotColdSets(p, 1664 * KiB, 10 * MiB, 3); }},
        {"ho.compute.tiny", [](const GenParams& p) {
             return makeBranchyCompute(p, 96 * KiB, 10); }},
        {"ho.thrash.4x", [](const GenParams& p) {
             return makeCyclicThrash(p, 8 * MiB, 6); }},
    };
    return defs;
}

GenParams
paramsFor(const char* name, unsigned idx, InstCount instructions,
          bool held_out, std::uint64_t seed_salt)
{
    GenParams p;
    p.name = name;
    p.instructions = instructions;
    // Salt 0 reproduces the canonical seeding; any other value draws
    // an independent instance of the same workload family (variability
    // studies re-generate the suite under several salts).
    p.seed = mix64(std::hash<std::string>{}(p.name) ^ 0x5eedULL ^
                   seed_salt);
    // Give every benchmark a private 1GB-aligned data region and a
    // private code region; held-out workloads live in a disjoint part
    // of the address space.
    const Addr slot = idx + (held_out ? 64 : 0);
    p.dataBase = 0x100000000ull + slot * 0x40000000ull;
    p.codeBase = 0x400000ull + slot * 0x100000ull;
    return p;
}

} // namespace

unsigned
suiteSize()
{
    return static_cast<unsigned>(suiteDefs().size());
}

unsigned
heldOutSize()
{
    return static_cast<unsigned>(heldOutDefs().size());
}

const std::string&
suiteName(unsigned idx)
{
    fatalIf(idx >= suiteSize(), "suite index out of range");
    static std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto& d : suiteDefs())
            v.emplace_back(d.name);
        return v;
    }();
    return names[idx];
}

const std::string&
heldOutName(unsigned idx)
{
    fatalIf(idx >= heldOutSize(), "held-out index out of range");
    static std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto& d : heldOutDefs())
            v.emplace_back(d.name);
        return v;
    }();
    return names[idx];
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> v;
    for (unsigned i = 0; i < suiteSize(); ++i)
        v.push_back(suiteName(i));
    return v;
}

Trace
makeSuiteTrace(unsigned idx, InstCount instructions,
               std::uint64_t seed_salt)
{
    MRP_PROF_SCOPE("trace.generate");
    fatalIf(idx >= suiteSize(), "suite index out of range");
    const auto& d = suiteDefs()[idx];
    return d.gen(paramsFor(d.name, idx, instructions, false, seed_salt));
}

Trace
makeHeldOutTrace(unsigned idx, InstCount instructions,
                 std::uint64_t seed_salt)
{
    MRP_PROF_SCOPE("trace.generate");
    fatalIf(idx >= heldOutSize(), "held-out index out of range");
    const auto& d = heldOutDefs()[idx];
    return d.gen(paramsFor(d.name, idx, instructions, true, seed_salt));
}

} // namespace mrp::trace
