/**
 * @file
 * Parameterized synthetic workload families.
 *
 * Each family is a small program model emitting a memory-access pattern
 * whose reuse behaviour correlates with a specific, documented set of
 * signals (PC, address region, within-block offset, burstiness,
 * insertion, global phase, set pressure). Together they stand in for
 * the SPEC CPU 2006 / CloudSuite simpoints of the paper: they span the
 * spectrum from LRU-friendly to LRU-adversarial and give each of the
 * paper's seven feature types at least one workload where it carries
 * signal (see DESIGN.md §4).
 */

#ifndef MRP_TRACE_GENERATORS_HPP
#define MRP_TRACE_GENERATORS_HPP

#include <cstdint>
#include <string>

#include "trace/trace.hpp"
#include "util/types.hpp"

namespace mrp::trace {

/** Identity and sizing shared by all generator families. */
struct GenParams
{
    std::string name;          //!< benchmark name
    InstCount instructions;    //!< approximate trace length
    std::uint64_t seed;        //!< RNG seed
    Addr dataBase;             //!< base of this benchmark's data region
    Pc codeBase;               //!< base of this benchmark's code region
};

/**
 * Pure streaming: sequential pass over a region much larger than the
 * LLC; every block is dead on arrival. All policies perform alike; the
 * workload tests that aggressive predictors do not harm a pattern with
 * no locality to exploit. (lbm-like)
 */
Trace makeStream(const GenParams& p, Addr ws_bytes,
                 unsigned pads_per_access);

/**
 * Cyclic thrash: repeated passes over a working set a small multiple of
 * the LLC, visited in a fixed pseudo-random block order (defeating the
 * stream prefetcher, keeping the reuse distance uniform). LRU yields
 * ~0% hits; policies that persistently protect a subset of blocks
 * (address-hash symmetry breaking) recover hits. (sphinx/libquantum-
 * like)
 */
Trace makeCyclicThrash(const GenParams& p, Addr ws_bytes,
                       unsigned pads_per_access);

/**
 * Hot loop polluted by periodic scans from distinct PCs. Predictors
 * learn the scan PC is dead and protect the hot set; LRU lets scans
 * evict it. The classic scan-resistance pattern. (gcc-like)
 */
Trace makeScanPollute(const GenParams& p, Addr hot_bytes, Addr scan_bytes,
                      unsigned accesses_per_scan_burst,
                      unsigned pads_per_access);

/**
 * A single load PC that touches both a reused hot region and a
 * streamed cold region: PC-only predictors see a mixed signal, while
 * address-region features separate the two. Exercises the paper's
 * address feature. (data_caching-like)
 */
Trace makeSamePcMixed(const GenParams& p, Addr hot_bytes, Addr cold_bytes,
                      double hot_prob, unsigned pads_per_access);

/**
 * Field-access pattern: one PC scans record headers at block offset 0
 * (dead after the scan touch) while the same PC re-reads a hot subset
 * of records at payload offsets (live). The within-block offset is the
 * only separating signal; exercises the paper's offset feature.
 * (gcc/xalancbmk field-dereference behaviour)
 */
Trace makeFieldAccess(const GenParams& p, Addr region_bytes,
                      Addr hot_bytes, double payload_prob,
                      unsigned pads_per_access);

/**
 * Pointer chasing over a shuffled permutation with dependent loads
 * (MLP of 1) plus a small live auxiliary structure. Latency-bound,
 * high MPKI, little headroom for management. (mcf-like)
 */
Trace makePointerChase(const GenParams& p, Addr ws_bytes,
                       unsigned pads_per_hop);

/**
 * Bursty blocks: each streamed block is touched several times
 * back-to-back (MRU hits) and then dies, while a hot set is re-read at
 * long distance. An MRU-hit (burst) is a death omen; exercises the
 * paper's burst feature.
 */
Trace makeBurst(const GenParams& p, Addr stream_bytes, Addr hot_bytes,
                unsigned burst_len, unsigned pads_per_access);

/**
 * Alternating program phases: a cache-friendly loop phase and a
 * thrashing scan phase. The global bias feature tracks the phase; the
 * insert feature separates newly inserted blocks (scan phase: dead)
 * from re-referenced ones.
 */
Trace makePhased(const GenParams& p, Addr friendly_bytes,
                 Addr thrash_bytes, InstCount phase_insts,
                 unsigned pads_per_access);

/**
 * Producer/consumer: a producer PC stores a buffer region that a
 * consumer PC later reads exactly once, after which the buffer is dead
 * until rewritten. Insertions by the producer are live; consumer
 * touches are last touches. (streaming server behaviour)
 */
Trace makeProducerConsumer(const GenParams& p, Addr buf_bytes,
                           unsigned bufs_in_flight,
                           unsigned pads_per_access);

/**
 * Three-deep loop nest over arrays of very different sizes: the inner
 * array lives in L1/L2, the middle array in the LLC, and the outer
 * array misses. A mixture of stack distances with moderate headroom.
 * (wrf/zeusmp-like)
 */
Trace makeLoopNest(const GenParams& p, Addr inner_bytes, Addr mid_bytes,
                   Addr outer_bytes, unsigned pads_per_access);

/**
 * Random read-modify-update over a region around the LLC size:
 * geometric reuse distances, little structure. Tests that predictors
 * do not lose to LRU when there is nothing to learn. (omnetpp-like)
 */
Trace makeGups(const GenParams& p, Addr ws_bytes,
               unsigned pads_per_access);

/**
 * Compute-bound: long non-memory runs and a small working set that
 * fits in L2. Near-zero LLC MPKI; fills out the benchmark population
 * the way cache-resident SPEC workloads do. (povray-like)
 */
Trace makeBranchyCompute(const GenParams& p, Addr ws_bytes,
                         unsigned pads_per_access);

/**
 * Slowly drifting working set: a dense window that slides over a large
 * region. Recency is the right signal, so LRU is near-optimal; tests
 * the cost of predictor false positives.
 */
Trace makeDriftingWs(const GenParams& p, Addr window_bytes,
                     Addr region_bytes, unsigned drift_period,
                     unsigned pads_per_access);

/**
 * Hot and cold set pressure: a reused region is spread over all cache
 * sets while a streaming region maps only to odd sets (128-byte
 * stride), so set pressure — the lastmiss feature — separates live
 * from dead where PC and address do not.
 */
Trace makeHotColdSets(const GenParams& p, Addr hot_bytes,
                      Addr stream_bytes, unsigned pads_per_access);

} // namespace mrp::trace

#endif // MRP_TRACE_GENERATORS_HPP
