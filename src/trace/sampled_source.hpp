/**
 * @file
 * SHARDS spatial sampling as a TraceSource decorator.
 *
 * A SampledTraceSource keeps exactly the memory records whose block
 * address passes the SHARDS hash threshold at rate 2^-rateLog2 and
 * rewrites every dropped memory record to a one-instruction
 * non-memory record. Two consequences make this the right shape for
 * sweep budget rungs:
 *
 *  - instructions() is EXACTLY the child's count (each record keeps
 *    its instruction weight), so warmup windows, MPKI denominators,
 *    and run identity stay well-defined without materializing
 *    anything.
 *  - Sampling is a pure per-record function of the child's record
 *    sequence, so the stream is deterministic under any chunking or
 *    delivery mode, and the spec serializes to queue workers.
 *
 * A workload spatially sampled at rate R behaves on a cache hierarchy
 * scaled by R like the full workload on the full hierarchy (the
 * SHARDS observation), with demand misses scaled by ~R — which is how
 * mrc::SampledRungObjective turns one cheap run into a full-fidelity
 * ranking signal.
 */

#ifndef MRP_TRACE_SAMPLED_SOURCE_HPP
#define MRP_TRACE_SAMPLED_SOURCE_HPP

#include <memory>
#include <vector>

#include "trace/source.hpp"
#include "util/hash.hpp"

namespace mrp::trace {

/** Name suffix marker: "<child>~s<rateLog2>". */
inline constexpr const char* kSampledNameMarker = "~s";

class SampledTraceSource final : public TraceSource
{
  public:
    SampledTraceSource(std::unique_ptr<TraceSource> child,
                       unsigned rate_log2);

    const std::string& name() const override { return name_; }
    InstCount instructions() const override
    {
        return child_->instructions();
    }
    std::span<const Record> nextChunk() override;
    void reset() override { child_->reset(); }

  private:
    std::unique_ptr<TraceSource> child_;
    unsigned rateLog2_;
    std::string name_;
    std::vector<Record> buf_;
};

} // namespace mrp::trace

#endif // MRP_TRACE_SAMPLED_SOURCE_HPP
