#include "trace/mix.hpp"

#include "trace/workloads.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace mrp::trace {

std::string
Mix::name() const
{
    std::string out;
    for (unsigned i = 0; i < benchmarks.size(); ++i) {
        if (i)
            out += '+';
        out += suiteName(benchmarks[i]);
    }
    return out;
}

std::vector<Mix>
makeMixes(unsigned count, std::uint64_t seed)
{
    Rng rng(seed);
    const unsigned n = suiteSize();
    fatalIf(n < 4, "suite too small for 4-core mixes");
    std::vector<Mix> mixes;
    mixes.reserve(count);
    for (unsigned m = 0; m < count; ++m) {
        Mix mix{};
        for (unsigned c = 0; c < 4; ++c) {
            bool fresh = false;
            while (!fresh) {
                mix.benchmarks[c] =
                    static_cast<unsigned>(rng.below(n));
                fresh = true;
                for (unsigned k = 0; k < c; ++k)
                    if (mix.benchmarks[k] == mix.benchmarks[c])
                        fresh = false;
            }
        }
        mixes.push_back(mix);
    }
    return mixes;
}

MixSplit
makeMixSplit(unsigned train_count, unsigned test_count, std::uint64_t seed)
{
    const auto all = makeMixes(train_count + test_count, seed);
    MixSplit split;
    split.train.assign(all.begin(), all.begin() + train_count);
    split.test.assign(all.begin() + train_count, all.end());
    return split;
}

} // namespace mrp::trace
