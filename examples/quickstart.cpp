/**
 * @file
 * Quickstart: the smallest end-to-end use of the library.
 *
 * Builds a synthetic workload, runs it through the paper's memory
 * hierarchy under LRU and under MPPPB (multiperspective placement,
 * promotion, and bypass), and prints the headline numbers.
 */

#include <cstdio>

#include "sim/single_core.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"

int
main()
{
    using namespace mrp;

    // 1. Pick a workload. The suite has 33 benchmarks standing in for
    //    the paper's SPEC/CloudSuite simpoints; "scan.a" is a hot loop
    //    polluted by scans — the classic case for reuse prediction.
    const trace::Trace workload = trace::makeSuiteTrace(9, 1000000);
    std::printf("workload: %s (%llu instructions, %llu memory ops)\n",
                workload.name().c_str(),
                static_cast<unsigned long long>(workload.instructions()),
                static_cast<unsigned long long>(workload.memOps()));

    // 2. Run it under the LRU baseline. The default SingleCoreConfig
    //    is the paper's single-thread machine: 4-wide OoO core,
    //    32KB L1D, 256KB L2, 2MB LLC, stream prefetcher.
    trace::MaterializedTraceSource source(workload);
    const auto lru =
        sim::runSingleCore(source, sim::makePolicyFactory("LRU"), {});
    std::printf("LRU   : IPC %.3f, LLC demand MPKI %.2f\n", lru.ipc,
                lru.mpki);

    // 3. Run it under MPPPB: the multiperspective reuse predictor
    //    driving bypass, placement, and promotion over static MDPP.
    const auto mpppb = sim::runSingleCore(
        source, sim::makePolicyFactory("MPPPB"), {});
    std::printf("MPPPB : IPC %.3f, LLC demand MPKI %.2f, %llu fills "
                "bypassed\n",
                mpppb.ipc, mpppb.mpki,
                static_cast<unsigned long long>(mpppb.llcBypasses));

    // 4. And under Belady's MIN with optimal bypass, the upper bound.
    const auto min = sim::runSingleCoreMin(source, {});
    std::printf("MIN   : IPC %.3f, LLC demand MPKI %.2f\n", min.ipc,
                min.mpki);

    std::printf("\nspeedup over LRU: MPPPB %.2fx, MIN %.2fx\n",
                mpppb.ipc / lru.ipc, min.ipc / lru.ipc);
    return 0;
}
