/**
 * @file
 * Example: measure a reuse predictor's accuracy without applying its
 * decisions (the paper's §6.3 methodology), printing a compact ROC
 * table for any chosen predictor and workloads.
 *
 * Usage: roc_analysis [predictor] [instructions] [benchmarks...]
 *   predictor: "sdbp" | "perceptron" | "multiperspective" (default)
 */

#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <memory>

#include "core/feature_sets.hpp"
#include "core/predictor.hpp"
#include "policy/perceptron.hpp"
#include "policy/sdbp.hpp"
#include "sim/roc_probe.hpp"
#include "sim/single_core.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"

int
main(int argc, char** argv)
{
    using namespace mrp;

    const std::string kind = argc > 1 ? argv[1] : "multiperspective";
    const InstCount insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1000000;
    std::vector<unsigned> benches;
    for (int i = 3; i < argc; ++i)
        benches.push_back(static_cast<unsigned>(std::atoi(argv[i])));
    if (benches.empty())
        benches = {9, 14, 16, 32}; // scan, mixpc, field, thrash

    const sim::SingleCoreConfig cfg;
    const cache::CacheGeometry geom(cfg.hierarchy.llcBytes,
                                    cfg.hierarchy.llcWays);

    std::vector<std::unique_ptr<policy::ReusePredictor>> preds;
    if (kind == "sdbp") {
        preds.push_back(
            std::make_unique<policy::SdbpPredictor>(geom, 1));
    } else if (kind == "perceptron") {
        preds.push_back(
            std::make_unique<policy::PerceptronPredictor>(geom, 1));
    } else {
        core::MultiperspectiveConfig mcfg;
        mcfg.features = core::featureSetTable1A();
        preds.push_back(
            std::make_unique<core::MultiperspectivePredictor>(geom, 1,
                                                              mcfg));
    }
    sim::RocProbe probe(geom, std::move(preds));

    const auto lru = sim::makePolicyFactory("LRU");
    for (const unsigned b : benches) {
        const auto tr = trace::makeSuiteTrace(b, insts);
        trace::MaterializedTraceSource src(tr);
        sim::runSingleCoreObserved(src, lru, cfg, &probe);
        std::printf("measured %s\n", tr.name().c_str());
    }

    std::printf("\npredictor: %s — %llu dead, %llu live outcomes\n",
                probe.predictor(0).name().c_str(),
                static_cast<unsigned long long>(probe.roc(0).deadCount()),
                static_cast<unsigned long long>(
                    probe.roc(0).liveCount()));
    std::printf("%10s %10s %10s\n", "threshold", "FPR", "TPR");
    const auto curve = probe.roc(0).curve();
    const std::size_t step = curve.size() > 24 ? curve.size() / 24 : 1;
    for (std::size_t i = 0; i < curve.size(); i += step)
        std::printf("%10d %10.4f %10.4f\n", curve[i].threshold,
                    curve[i].falsePositiveRate,
                    curve[i].truePositiveRate);
    std::printf("\nTPR at the paper's bypass operating band: "
                "%.4f @ FPR 0.25, %.4f @ FPR 0.31\n",
                probe.roc(0).tprAtFpr(0.25),
                probe.roc(0).tprAtFpr(0.31));
    return 0;
}
