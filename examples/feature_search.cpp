/**
 * @file
 * Example: develop a feature set for this infrastructure the way the
 * paper develops its published sets (§5.1-5.2) — random search over
 * sets of 16 parameterized features scored by average MPKI on
 * training workloads, followed by hill-climbing refinement of the
 * best random set.
 *
 * Usage: feature_search [random_sets] [climb_iters] [instructions]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/feature_sets.hpp"
#include "search/feature_search.hpp"

using namespace mrp;

int
main(int argc, char** argv)
{
    const unsigned random_sets =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 40;
    const unsigned climb_iters =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 60;
    const InstCount insts =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 600000;

    search::SearchConfig cfg;
    cfg.workloads = {2, 7, 9, 12, 14, 16, 18, 21, 25, 30};
    cfg.traceInstructions = insts;
    cfg.baseConfig = core::singleThreadMpppbConfig();

    search::FeatureSetEvaluator eval(cfg);
    std::printf("reference: LRU mpki %.3f, MIN mpki %.3f\n",
                eval.lruMpki(), eval.minMpki());

    // Seed the search with the published sets plus random ones.
    search::Candidate best;
    best.features = core::featureSetTable1A();
    best.averageMpki = eval.averageMpki(best.features);
    std::printf("Table 1(a): mpki %.3f\n", best.averageMpki);
    for (const auto& cand :
         {core::featureSetTable1B(), core::featureSetTable2()}) {
        const double m = eval.averageMpki(cand);
        std::printf("published set: mpki %.3f\n", m);
        if (m < best.averageMpki)
            best = {cand, m};
    }

    auto randoms = search::randomSearch(eval, cfg, random_sets, 0xBEEF);
    std::sort(randoms.begin(), randoms.end(),
              [](const auto& a, const auto& b) {
                  return a.averageMpki < b.averageMpki;
              });
    for (std::size_t i = 0; i < std::min<std::size_t>(5, randoms.size());
         ++i)
        std::printf("random #%zu: mpki %.3f\n", i,
                    randoms[i].averageMpki);
    if (!randoms.empty() && randoms[0].averageMpki < best.averageMpki)
        best = randoms[0];

    best = search::hillClimb(eval, cfg, best, climb_iters, 0xC11Bull);
    std::printf("\nbest set after hill-climbing (mpki %.3f):\n%s",
                best.averageMpki,
                core::formatFeatureSet(best.features).c_str());
    return 0;
}
