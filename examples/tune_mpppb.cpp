/**
 * @file
 * Example: tune the MPPPB thresholds and placement positions the way
 * the paper does (§5.5) — the bypass threshold τ0 by exhaustive
 * search, then the placement thresholds/positions and the promotion
 * threshold by random feasible combinations — minimizing average MPKI
 * on a training subset of benchmarks.
 *
 * Usage: tune_mpppb [substrate] [instructions] [combos]
 *   substrate: "mdpp" (default) or "srrip"
 */

#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <vector>

#include "core/mpppb.hpp"
#include "sim/single_core.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"

using namespace mrp;

namespace {

/** Training subset: diverse, but far from the whole suite. */
const std::vector<unsigned> kTrainBenchmarks = {2,  7,  9,  12, 14,
                                                16, 18, 21, 25, 30};

/**
 * Objective: negative geomean speedup over LRU (lower is better, so
 * the search minimizes it like the paper minimizes average MPKI).
 */
double
evaluate(const std::vector<trace::Trace>& traces,
         const std::vector<double>& lru_ipc,
         const core::MpppbConfig& cfg)
{
    const auto factory = sim::makeMpppbFactory(cfg);
    std::vector<double> speedups;
    for (std::size_t i = 0; i < traces.size(); ++i) {
        trace::MaterializedTraceSource src(traces[i]);
        speedups.push_back(sim::runSingleCore(src, factory, {}).ipc /
                           lru_ipc[i]);
    }
    return -geomean(speedups);
}

} // namespace

int
main(int argc, char** argv)
{
    const bool srrip = argc > 1 && std::strcmp(argv[1], "srrip") == 0;
    const InstCount insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1500000;
    const unsigned combos =
        argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 48;

    std::vector<trace::Trace> traces;
    for (const unsigned b : kTrainBenchmarks)
        traces.push_back(trace::makeSuiteTrace(b, insts));

    core::MpppbConfig cfg = srrip ? core::multiCoreMpppbConfig()
                                  : core::singleThreadMpppbConfig();

    std::vector<double> lru_ipc;
    for (const auto& t : traces) {
        trace::MaterializedTraceSource src(t);
        lru_ipc.push_back(
            sim::runSingleCore(src, sim::makePolicyFactory("LRU"), {})
                .ipc);
    }

    // --- Stage 1: exhaustive sweep of the bypass threshold. ---
    double best_mpki = 1e30;
    int best_tau0 = cfg.thresholds.tauBypass;
    for (int tau0 = -60; tau0 <= 160; tau0 += 20) {
        cfg.thresholds.tauBypass = tau0;
        const double m = evaluate(traces, lru_ipc, cfg);
        std::printf("tau0 %4d -> geomean speedup %8.4f\n", tau0, -m);
        if (m < best_mpki) {
            best_mpki = m;
            best_tau0 = tau0;
        }
    }
    cfg.thresholds.tauBypass = best_tau0;
    std::printf("best tau0 = %d (speedup %.4f)\n\n", best_tau0, -best_mpki);

    // --- Stage 2: random feasible placement/promotion combinations. ---
    Rng rng(0xC0FFEE);
    const std::uint32_t pos_max = srrip ? 3 : 15;
    core::MpppbThresholds best = cfg.thresholds;
    for (unsigned i = 0; i < combos; ++i) {
        core::MpppbThresholds t = cfg.thresholds;
        // τ1 > τ2 > τ3, all <= τ0.
        int taus[3];
        for (int& v : taus)
            v = static_cast<int>(rng.range(0, 220)) - 120;
        std::sort(taus, taus + 3, std::greater<int>());
        t.tau = {std::min(taus[0], best_tau0 - 1), taus[1], taus[2]};
        // π1 >= π2 >= π3 (less favorable positions for deader blocks).
        std::uint32_t pis[3];
        for (auto& v : pis)
            v = static_cast<std::uint32_t>(rng.range(1, pos_max));
        std::sort(pis, pis + 3, std::greater<std::uint32_t>());
        t.pi = {pis[0], pis[1], pis[2]};
        t.tauNoPromote = static_cast<int>(rng.range(0, 200)) - 60;

        core::MpppbConfig trial = cfg;
        trial.thresholds = t;
        const double m = evaluate(traces, lru_ipc, trial);
        if (m < best_mpki) {
            best_mpki = m;
            best = t;
            std::printf(
                "improved: speedup %8.4f  tau={%d,%d,%d} pi={%u,%u,%u} "
                "tau4=%d\n",
                -m, t.tau[0], t.tau[1], t.tau[2], t.pi[0], t.pi[1],
                t.pi[2], t.tauNoPromote);
        }
    }

    std::printf("\nfinal (%s): tau0=%d tau={%d,%d,%d} pi={%u,%u,%u} "
                "tau4=%d speedup=%.4f\n",
                srrip ? "srrip" : "mdpp", best.tauBypass, best.tau[0],
                best.tau[1], best.tau[2], best.pi[0], best.pi[1],
                best.pi[2], best.tauNoPromote, -best_mpki);
    return 0;
}
