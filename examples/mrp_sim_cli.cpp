/**
 * @file
 * Command-line simulator driver: run any suite benchmark or an
 * external trace file under any policy, with configurable cache
 * sizes — the everyday research workflow as one executable.
 *
 * Usage:
 *   mrp_sim_cli --list
 *   mrp_sim_cli --benchmark scan.a [--policy MPPPB] [--insts N]
 *               [--llc-kb 2048] [--no-prefetch] [--warmup 0.25]
 *   mrp_sim_cli --trace file.mrpt [--policy Hawkeye] ...
 *   mrp_sim_cli --benchmark scan.a --dump file.mrpt   (export trace)
 *
 * Policy "MIN" runs the two-pass Belady oracle.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "sim/single_core.hpp"
#include "trace/trace_io.hpp"
#include "trace/workloads.hpp"
#include "util/logging.hpp"

namespace {

using namespace mrp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mrp_sim_cli --list\n"
        "       mrp_sim_cli (--benchmark NAME | --trace FILE)\n"
        "                   [--policy NAME] [--insts N] [--llc-kb N]\n"
        "                   [--no-prefetch] [--warmup FRAC]\n"
        "                   [--dump FILE]\n");
    return 2;
}

std::optional<unsigned>
benchmarkIndex(const std::string& name)
{
    for (unsigned i = 0; i < trace::suiteSize(); ++i)
        if (trace::suiteName(i) == name)
            return i;
    for (unsigned i = 0; i < trace::heldOutSize(); ++i)
        if (trace::heldOutName(i) == name)
            return 1000 + i;
    return std::nullopt;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string benchmark;
    std::string trace_path;
    std::string dump_path;
    std::string policy = "MPPPB";
    InstCount insts = 2500000;
    Addr llc_kb = 2048;
    bool prefetch = true;
    double warmup = 0.25;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            fatalIf(i + 1 >= argc, "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--list") {
            std::printf("suite benchmarks:\n");
            for (unsigned b = 0; b < trace::suiteSize(); ++b)
                std::printf("  %s\n", trace::suiteName(b).c_str());
            std::printf("held-out workloads:\n");
            for (unsigned b = 0; b < trace::heldOutSize(); ++b)
                std::printf("  %s\n", trace::heldOutName(b).c_str());
            return 0;
        } else if (arg == "--benchmark") {
            benchmark = next();
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--dump") {
            dump_path = next();
        } else if (arg == "--policy") {
            policy = next();
        } else if (arg == "--insts") {
            insts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--llc-kb") {
            llc_kb = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--no-prefetch") {
            prefetch = false;
        } else if (arg == "--warmup") {
            warmup = std::atof(next());
        } else {
            return usage();
        }
    }
    if (benchmark.empty() == trace_path.empty())
        return usage(); // exactly one source required

    std::optional<trace::Trace> tr;
    if (!trace_path.empty()) {
        tr.emplace(trace::loadTrace(trace_path));
    } else {
        const auto idx = benchmarkIndex(benchmark);
        if (!idx) {
            std::fprintf(stderr, "unknown benchmark '%s' (--list)\n",
                         benchmark.c_str());
            return 2;
        }
        tr.emplace(*idx >= 1000
                       ? trace::makeHeldOutTrace(*idx - 1000, insts)
                       : trace::makeSuiteTrace(*idx, insts));
    }

    if (!dump_path.empty()) {
        trace::saveTrace(dump_path, *tr);
        std::printf("wrote %s (%llu instructions)\n", dump_path.c_str(),
                    static_cast<unsigned long long>(tr->instructions()));
        return 0;
    }

    sim::SingleCoreConfig cfg;
    cfg.hierarchy.llcBytes = llc_kb * 1024;
    cfg.hierarchy.prefetchEnabled = prefetch;
    cfg.warmupFraction = warmup;

    const auto r =
        policy == "MIN"
            ? sim::runSingleCoreMin(*tr, cfg)
            : sim::runSingleCore(*tr, sim::makePolicyFactory(policy),
                                 cfg);
    std::printf("benchmark : %s\n", r.benchmark.c_str());
    std::printf("policy    : %s\n", r.policy.c_str());
    std::printf("insts     : %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("cycles    : %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("IPC       : %.4f\n", r.ipc);
    std::printf("LLC MPKI  : %.3f (%llu demand misses, %llu accesses)\n",
                r.mpki,
                static_cast<unsigned long long>(r.llcDemandMisses),
                static_cast<unsigned long long>(r.llcDemandAccesses));
    std::printf("bypasses  : %llu\n",
                static_cast<unsigned long long>(r.llcBypasses));
    return 0;
}
