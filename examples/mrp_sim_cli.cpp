/**
 * @file
 * Command-line simulator driver: run any suite benchmark or an
 * external trace file under any policy — or a comma-separated batch of
 * policies executed in parallel — with configurable cache sizes; the
 * everyday research workflow as one executable.
 *
 * Usage:
 *   mrp_sim_cli --list
 *   mrp_sim_cli --benchmark scan.a [--policy MPPPB] [--insts N]
 *               [--llc-kb 2048] [--no-prefetch] [--warmup 0.25]
 *   mrp_sim_cli --benchmark scan.a --policy LRU,Hawkeye,MPPPB,MIN
 *               [--jobs N] [--json FILE] [--csv FILE] [--timing]
 *               [--journal FILE] [--resume FILE] [--timeout SEC]
 *               [--retries N]
 *               [--metrics FILE] [--trace-out FILE] [--epoch N]
 *   mrp_sim_cli --trace file.mrpt [--policy Hawkeye] ...
 *               [--stream materialize|buffered|mmap] [--decode-ahead]
 *               [--chunk-records N]
 *   mrp_sim_cli --benchmark scan.a --dump file.mrpt   (export trace)
 *   mrp_sim_cli --mix scan.a,zipf [--partition 10,6]
 *               [--slo-mpki 2.5] [--qos] [--require-slo]
 *               [--qos-epoch N] [--qos-breach N] [--qos-calm N]
 *               [--qos-min-ways N] [--qos-hysteresis F]
 *               [--measure-cycles N] ...
 *
 * Multi-tenant mode (see README "Multi-tenant LLC"): --mix runs a
 * comma-separated list of >= 2 benchmarks as one shared-LLC
 * multi-core run, one core per name. --partition pins each tenant
 * (= core) to a fixed way count (the counts must sum to the LLC's
 * associativity); --slo-mpki attaches MPKI ceilings (one value =
 * tenant 0, or a full comma list); --qos enables the epoch-driven
 * controller that moves one way per epoch toward breached SLOs.
 * --require-slo exits 1 when a final measured MPKI exceeds its
 * ceiling — the CI gate. Reports gain per-tenant outcome fields and
 * the QoS resize schedule, byte-identical at any --jobs.
 *
 * Streaming (see README "Streaming traces"): traces are pulled chunk
 * by chunk through the TraceSource API, so a trace file is never fully
 * resident. --stream picks the file delivery mode — buffered reads
 * (default), mmap with sequential madvise, or materialize (load the
 * whole trace up front, the pre-streaming behavior); --decode-ahead
 * overlaps decoding with simulation on a background thread; and
 * --chunk-records sets the pull granularity. All of these change only
 * how bytes arrive: reports are byte-identical across every
 * combination. --dump streams as well (constant memory) and writes
 * the chunked v3 format atomically.
 *
 * Besides the suite/held-out names, --benchmark accepts the streaming
 * generator families, which synthesize records on the fly (no trace
 * ever exists in memory): "zipf" (Zipfian key popularity, optionally
 * "zipf:THETA"), "blkio" (block-I/O / storage-cache accesses), and
 * "phase" (a phase-shifting zipf/blkio alternation). --insts scales
 * them and --seed re-salts them like any synthetic workload.
 *
 * Policy "MIN" runs the two-pass Belady oracle. A multi-policy batch
 * runs through the parallel ExperimentRunner; --jobs 0 (default)
 * means one worker per hardware thread. --json/--csv write the
 * deterministic batch report (add --timing for wall-clock fields).
 *
 * Durability (see README "Resilience"): --journal appends each
 * completed run to an fsync'd JSONL checkpoint; --resume skips runs
 * already recorded there (and keeps journaling to the same file
 * unless --journal overrides it), producing reports byte-identical
 * to an uninterrupted batch; --timeout flags runs exceeding the
 * per-run watchdog deadline; --retries re-executes transient
 * (io/timeout/resource) failures with exponential backoff.
 *
 * Observability (see README "Observability"): --metrics writes a
 * standalone metrics JSON document, --trace-out a Chrome
 * trace_event-format timeline loadable in Perfetto, and --epoch sets
 * the snapshot interval in LLC accesses (default 100000). Any of the
 * three enables telemetry for every run, which also embeds a
 * "metrics" object per run in --json and a metrics section in --csv.
 * Resumed runs carry no metrics (the journal stores outcomes only).
 *
 * Profiling (see README "Profiling & benchmarking"): --prof-out FILE
 * attaches a phase-timer Profiler to every run and writes a
 * BENCH_*.json document (schema "mrp-bench-v1") with the per-phase
 * time tree, host resource usage, and throughput; it also enriches
 * --timing reports with user/sys seconds and accesses/second, and
 * adds the phase tree to --trace-out as a second process family.
 * --progress prints a live one-line-per-event batch heartbeat to
 * stderr; --progress-jsonl FILE appends the same events as JSON
 * lines. Progress output is flushed but never fsync'd and is excluded
 * from the deterministic reports. With --resume, restored runs are
 * reported as "run_skipped" (they were not re-executed, so they have
 * no timing and do not count toward the ETA).
 *
 * Reproducibility: --seed N re-salts the synthetic trace generator
 * (only meaningful with --benchmark) and stamps N into every run
 * result, report, and journal entry, so an experiment can be replayed
 * from its report alone. Seed 0 (the default) is the canonical
 * paper-default instance and is omitted from reports.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "prof/export.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/report.hpp"
#include "trace/spec.hpp"
#include "trace/stream_reader.hpp"
#include "trace/trace_io.hpp"
#include "trace/workloads.hpp"
#include "util/logging.hpp"

namespace {

using namespace mrp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mrp_sim_cli --list\n"
        "       mrp_sim_cli (--benchmark NAME | --trace FILE)\n"
        "                   [--policy NAME[,NAME...]] [--insts N]\n"
        "                   [--llc-kb N] [--no-prefetch]\n"
        "                   [--warmup FRAC] [--jobs N]\n"
        "                   [--json FILE] [--csv FILE] [--timing]\n"
        "                   [--journal FILE] [--resume FILE]\n"
        "                   [--timeout SEC] [--retries N]\n"
        "                   [--metrics FILE] [--trace-out FILE]\n"
        "                   [--epoch N] [--dump FILE]\n"
        "                   [--prof-out FILE] [--progress]\n"
        "                   [--progress-jsonl FILE] [--seed N]\n"
        "                   [--stream materialize|buffered|mmap]\n"
        "                   [--decode-ahead] [--chunk-records N]\n"
        "       mrp_sim_cli --mix NAME,NAME[,...]\n"
        "                   [--partition W,W[,...]] [--slo-mpki S[,S...]]\n"
        "                   [--qos] [--require-slo] [--qos-epoch N]\n"
        "                   [--qos-breach N] [--qos-calm N]\n"
        "                   [--qos-min-ways N] [--qos-hysteresis F]\n"
        "                   [--measure-cycles N] ...\n"
        "streaming benchmarks: zipf[:THETA], blkio, phase\n");
    return 2;
}

std::optional<unsigned>
benchmarkIndex(const std::string& name)
{
    for (unsigned i = 0; i < trace::suiteSize(); ++i)
        if (trace::suiteName(i) == name)
            return i;
    for (unsigned i = 0; i < trace::heldOutSize(); ++i)
        if (trace::heldOutName(i) == name)
            return 1000 + i;
    return std::nullopt;
}

std::vector<std::string>
splitCommas(const std::string& s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const auto comma = s.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

/** Streaming generator families addressable by --benchmark name. */
std::optional<trace::TraceSpec>
streamFamilySpec(const std::string& name, InstCount insts,
                 std::uint64_t seed)
{
    if (name == "zipf" || name.rfind("zipf:", 0) == 0) {
        trace::ZipfParams p;
        p.instructions = insts;
        if (seed != 0)
            p.seed = seed;
        if (name.size() > 5) {
            p.theta = std::atof(name.c_str() + 5);
            p.name = name;
        }
        return trace::TraceSpec::zipf(p);
    }
    if (name == "blkio") {
        trace::BlockIoParams p;
        p.instructions = insts;
        if (seed != 0)
            p.seed = seed;
        return trace::TraceSpec::blockIo(p);
    }
    if (name == "phase") {
        trace::ZipfParams zp;
        zp.instructions = insts;
        trace::BlockIoParams bp;
        bp.instructions = insts;
        if (seed != 0) {
            zp.seed = seed;
            bp.seed = seed + 1;
        }
        std::vector<trace::TraceSpec> kids;
        kids.push_back(trace::TraceSpec::zipf(zp));
        kids.push_back(trace::TraceSpec::blockIo(bp));
        return trace::TraceSpec::phaseMix(
            "phase", insts, std::max<InstCount>(insts / 8, 1),
            std::move(kids));
    }
    return std::nullopt;
}

/** Resolve one --benchmark/--mix name: generator family, suite, or
 * held-out workload. */
trace::TraceSpec
resolveBenchmark(const std::string& name, InstCount insts,
                 std::uint64_t seed)
{
    if (auto fam = streamFamilySpec(name, insts, seed))
        return *fam;
    const auto idx = benchmarkIndex(name);
    fatalIf(!idx, ErrorCode::Config,
            "unknown benchmark '" + name + "' (--list)");
    return *idx >= 1000
               ? trace::TraceSpec::heldOut(*idx - 1000, insts, seed)
               : trace::TraceSpec::suite(*idx, insts, seed);
}

int run(int argc, char** argv);

} // namespace

int
main(int argc, char** argv)
{
    // User/configuration errors (unknown names, bad values, I/O
    // failures) surface as FatalError; report them as CLI errors, not
    // aborts.
    try {
        return run(argc, argv);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "mrp_sim_cli: %s [%s]\n", e.what(),
                     errorCodeName(e.code()));
        return 2;
    }
}

namespace {

int
run(int argc, char** argv)
{
    std::string benchmark;
    std::string trace_path;
    std::string dump_path;
    std::string json_path;
    std::string csv_path;
    std::string metrics_path;
    std::string trace_out_path;
    std::string prof_out_path;
    std::uint64_t epoch = 0; //!< 0 = library default
    runner::RunnerOptions ropts;
    std::string policy = "MPPPB";
    InstCount insts = 2500000;
    Addr llc_kb = 2048;
    bool prefetch = true;
    bool timing = false;
    double warmup = 0.25;
    unsigned jobs = 0;
    std::uint64_t seed = 0;
    std::string stream_mode = "buffered";
    trace::TraceSpec::OpenOptions oopts;
    std::string mix_arg;
    std::vector<unsigned> partition;
    std::vector<double> slo_mpki;
    bool qos = false;
    bool require_slo = false;
    tenant::QosConfig qos_cfg;
    Cycle measure_cycles = 0; //!< 0 = driver default

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            fatalIf(i + 1 >= argc, "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--list") {
            std::printf("suite benchmarks:\n");
            for (unsigned b = 0; b < trace::suiteSize(); ++b)
                std::printf("  %s\n", trace::suiteName(b).c_str());
            std::printf("held-out workloads:\n");
            for (unsigned b = 0; b < trace::heldOutSize(); ++b)
                std::printf("  %s\n", trace::heldOutName(b).c_str());
            return 0;
        } else if (arg == "--benchmark") {
            benchmark = next();
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--dump") {
            dump_path = next();
        } else if (arg == "--policy") {
            policy = next();
        } else if (arg == "--insts") {
            insts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--llc-kb") {
            llc_kb = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--no-prefetch") {
            prefetch = false;
        } else if (arg == "--warmup") {
            warmup = std::atof(next());
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--journal") {
            ropts.journalPath = next();
        } else if (arg == "--resume") {
            ropts.resumePath = next();
        } else if (arg == "--timeout") {
            ropts.timeoutSeconds = std::atof(next());
        } else if (arg == "--retries") {
            ropts.maxRetries = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--metrics") {
            metrics_path = next();
        } else if (arg == "--trace-out") {
            trace_out_path = next();
        } else if (arg == "--epoch") {
            epoch = std::strtoull(next(), nullptr, 10);
            fatalIf(epoch == 0, "--epoch must be positive");
        } else if (arg == "--prof-out") {
            prof_out_path = next();
            ropts.profile = true;
        } else if (arg == "--progress") {
            ropts.progressStderr = true;
        } else if (arg == "--progress-jsonl") {
            ropts.progressJsonlPath = next();
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--stream") {
            stream_mode = next();
            if (stream_mode == "mmap") {
                oopts.fileMode = trace::FileMode::Mmap;
            } else if (stream_mode != "buffered" &&
                       stream_mode != "materialize") {
                fatal(ErrorCode::Config,
                      "--stream wants materialize, buffered, or "
                      "mmap (got '" + stream_mode + "')");
            }
        } else if (arg == "--mix") {
            mix_arg = next();
        } else if (arg == "--partition") {
            for (const auto& w : splitCommas(next()))
                partition.push_back(static_cast<unsigned>(
                    std::strtoul(w.c_str(), nullptr, 10)));
        } else if (arg == "--slo-mpki") {
            for (const auto& s : splitCommas(next()))
                slo_mpki.push_back(std::atof(s.c_str()));
        } else if (arg == "--qos") {
            qos = true;
        } else if (arg == "--require-slo") {
            require_slo = true;
        } else if (arg == "--qos-epoch") {
            qos_cfg.epochInstructions =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--qos-breach") {
            qos_cfg.breachEpochs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--qos-calm") {
            qos_cfg.calmEpochs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--qos-min-ways") {
            qos_cfg.minWays = static_cast<std::uint32_t>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--qos-hysteresis") {
            qos_cfg.hysteresisFrac = std::atof(next());
        } else if (arg == "--measure-cycles") {
            measure_cycles = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--decode-ahead") {
            oopts.decodeAhead = true;
        } else if (arg == "--chunk-records") {
            oopts.chunkRecords = std::strtoull(next(), nullptr, 10);
            fatalIf(oopts.chunkRecords == 0,
                    "--chunk-records must be positive");
        } else {
            return usage();
        }
    }
    const bool mix_mode = !mix_arg.empty();
    if (mix_mode) {
        fatalIf(!benchmark.empty() || !trace_path.empty() ||
                    !dump_path.empty() ||
                    stream_mode == "materialize",
                ErrorCode::Config,
                "--mix replaces --benchmark/--trace/--dump and does "
                "not support --stream materialize");
    } else if (benchmark.empty() == trace_path.empty()) {
        return usage(); // exactly one source required
    }

    std::vector<trace::TraceSpec> mix_specs;
    std::string mix_name;
    if (mix_mode) {
        const auto names = splitCommas(mix_arg);
        fatalIf(names.size() < 2, ErrorCode::Config,
                "--mix needs >= 2 comma-separated benchmarks");
        for (const auto& n : names) {
            mix_specs.push_back(resolveBenchmark(n, insts, seed));
            if (!mix_name.empty())
                mix_name += "+";
            mix_name += mix_specs.back().displayName();
        }
    }

    std::optional<trace::TraceSpec> spec;
    if (mix_mode) {
        // resolved above; the single-source paths below are skipped
    } else if (!trace_path.empty()) {
        spec.emplace(trace::TraceSpec::file(trace_path));
    } else if (auto fam = streamFamilySpec(benchmark, insts, seed)) {
        spec = std::move(fam);
    } else {
        const auto idx = benchmarkIndex(benchmark);
        if (!idx) {
            std::fprintf(stderr, "unknown benchmark '%s' (--list)\n",
                         benchmark.c_str());
            return 2;
        }
        spec.emplace(*idx >= 1000
                         ? trace::TraceSpec::heldOut(*idx - 1000,
                                                     insts, seed)
                         : trace::TraceSpec::suite(*idx, insts, seed));
    }

    if (!dump_path.empty()) {
        // Stream straight to the chunked v3 format: constant memory
        // for any trace length, atomic tmp+fsync+rename on disk.
        trace::ChunkedTraceWriter writer(dump_path,
                                         spec->displayName());
        const auto src = spec->open(oopts);
        writer.appendAll(*src);
        writer.finish();
        std::printf("wrote %s (%llu instructions)\n", dump_path.c_str(),
                    static_cast<unsigned long long>(
                        writer.instructions()));
        return 0;
    }

    // --stream materialize: load the whole record sequence up front
    // (the pre-streaming behavior) and run from memory. Identical
    // reports, maximal RSS — useful mainly as the equivalence anchor.
    std::optional<trace::Trace> held;
    if (!mix_mode && stream_mode == "materialize") {
        held.emplace(trace::materialize(*spec->open(oopts)));
        spec.emplace(trace::TraceSpec::borrowed(*held));
    }

    sim::SingleCoreConfig cfg;
    cfg.hierarchy.llcBytes = llc_kb * 1024;
    cfg.hierarchy.prefetchEnabled = prefetch;
    cfg.warmupFraction = warmup;
    cfg.seed = seed;
    const bool telemetry =
        !metrics_path.empty() || !trace_out_path.empty() || epoch > 0;
    if (telemetry) {
        cfg.telemetry.enabled = true;
        if (epoch > 0)
            cfg.telemetry.epochAccesses = epoch;
    }

    // Multi-tenant mix configuration (the driver validates the
    // partition against the LLC geometry and core count).
    sim::MultiCoreConfig mcfg;
    if (mix_mode) {
        const unsigned ncores =
            static_cast<unsigned>(mix_specs.size());
        mcfg.hierarchy.llcBytes = llc_kb * 1024;
        mcfg.hierarchy.prefetchEnabled = prefetch;
        mcfg.seed = seed;
        // FIESTA warmup is a total budget across cores; keep the
        // per-core share equal to the single-core fraction.
        mcfg.warmupInstructions = static_cast<InstCount>(
            warmup * static_cast<double>(insts) *
            static_cast<double>(ncores));
        if (measure_cycles > 0)
            mcfg.measureCycles = measure_cycles;
        if (telemetry) {
            mcfg.telemetry.enabled = true;
            if (epoch > 0)
                mcfg.telemetry.epochAccesses = epoch;
        }
        if (!partition.empty()) {
            fatalIf(partition.size() != mix_specs.size(),
                    ErrorCode::Config,
                    "--partition needs one way count per --mix entry");
            mcfg.tenancy.tenants.resize(ncores);
            for (unsigned t = 0; t < ncores; ++t)
                mcfg.tenancy.tenants[t].ways = partition[t];
            if (!slo_mpki.empty()) {
                fatalIf(slo_mpki.size() != 1 &&
                            slo_mpki.size() != mix_specs.size(),
                        ErrorCode::Config,
                        "--slo-mpki wants one value (tenant 0) or "
                        "one per tenant");
                for (std::size_t t = 0; t < slo_mpki.size(); ++t)
                    mcfg.tenancy.tenants[t].sloMpki = slo_mpki[t];
            }
            mcfg.tenancy.qos = qos_cfg;
            mcfg.tenancy.qos.enabled = qos;
        } else {
            fatalIf(!slo_mpki.empty() || qos || require_slo,
                    ErrorCode::Config,
                    "--slo-mpki/--qos/--require-slo need --partition");
        }
    }

    const auto policies = splitCommas(policy);
    fatalIf(policies.empty(), "empty --policy list");

    // --resume implies continuing the same journal; a first run with
    // no journal yet is a cold start, not an error.
    if (!ropts.resumePath.empty()) {
        if (ropts.journalPath.empty())
            ropts.journalPath = ropts.resumePath;
        std::ifstream probe(ropts.resumePath);
        if (!probe) {
            std::fprintf(stderr,
                         "note: resume journal %s not found; "
                         "starting cold\n",
                         ropts.resumePath.c_str());
            ropts.resumePath.clear();
        }
    }
    const bool resilience = !ropts.journalPath.empty() ||
                            !ropts.resumePath.empty() ||
                            ropts.timeoutSeconds > 0.0 ||
                            ropts.maxRetries > 0;
    const bool profiling = ropts.profile || ropts.progressStderr ||
                           !ropts.progressJsonlPath.empty();

    if (!mix_mode && policies.size() == 1 && json_path.empty() &&
        csv_path.empty() && !resilience && !telemetry && !profiling) {
        // Single-run path: the detailed per-run report.
        const auto src = spec->open(oopts);
        const auto r =
            policy == "MIN"
                ? sim::runSingleCoreMin(*src, cfg)
                : sim::runSingleCore(
                      *src, sim::makePolicyFactory(policy), cfg);
        std::printf("benchmark : %s\n", r.benchmark.c_str());
        std::printf("policy    : %s\n", r.policy.c_str());
        std::printf("insts     : %llu\n",
                    static_cast<unsigned long long>(r.instructions));
        std::printf("cycles    : %llu\n",
                    static_cast<unsigned long long>(r.cycles));
        std::printf("IPC       : %.4f\n", r.ipc);
        std::printf("LLC MPKI  : %.3f (%llu demand misses, %llu "
                    "accesses)\n",
                    r.mpki,
                    static_cast<unsigned long long>(r.llcDemandMisses),
                    static_cast<unsigned long long>(
                        r.llcDemandAccesses));
        std::printf("bypasses  : %llu\n",
                    static_cast<unsigned long long>(r.llcBypasses));
        return 0;
    }

    // Batch path: one request per policy, run in parallel. Every
    // worker opens its own stream over the shared spec.
    std::vector<runner::RunRequest> batch;
    batch.reserve(policies.size());
    for (const auto& p : policies) {
        if (mix_mode)
            batch.push_back(runner::RunRequest::multiCore(
                mix_specs, runner::PolicySpec::byName(p), mcfg));
        else
            batch.push_back(runner::RunRequest::singleCore(
                *spec, runner::PolicySpec::byName(p), cfg));
        batch.back().openOptions = oopts;
    }

    const runner::ExperimentRunner pool(jobs);
    const auto set = pool.run(batch, ropts);

    const std::string display =
        mix_mode ? mix_name : spec->displayName();
    std::printf("# %s: %zu policies, %u worker(s), %.2fs wall\n",
                display.c_str(), set.results.size(), set.jobs,
                set.wallSeconds);
    std::printf("%-12s %10s %10s %14s %10s\n", "policy", "IPC",
                "MPKI", "insts", "misses");
    bool failed = false;
    for (const auto& r : set.results) {
        if (!r.ok()) {
            std::printf("%-12s FAILED [%s]: %s\n", r.policy.c_str(),
                        errorCodeName(r.errorCode), r.error.c_str());
            failed = true;
            continue;
        }
        std::printf("%-12s %10.4f %10.3f %14llu %10llu\n",
                    r.policy.c_str(), r.ipc, r.mpki,
                    static_cast<unsigned long long>(r.instructions),
                    static_cast<unsigned long long>(
                        r.llcDemandMisses));
        for (std::size_t t = 0; t < r.tenants.size(); ++t) {
            const auto& o = r.tenants[t];
            std::printf("  tenant %zu: ways %u -> %u, mpki %.3f",
                        t, o.waysInitial, o.waysFinal, o.mpki);
            if (o.sloMpki > 0.0) {
                const bool met = o.mpki <= o.sloMpki;
                std::printf(" (slo %.3f %s)", o.sloMpki,
                            met ? "met" : "VIOLATED");
                if (require_slo && !met)
                    failed = true;
            }
            std::printf("\n");
        }
        if (!r.tenants.empty())
            std::printf("  qos resizes: %zu\n", r.qosSchedule.size());
    }

    const runner::ReportOptions opts{timing};
    if (!json_path.empty()) {
        runner::writeFile(json_path, runner::toJson(set, opts));
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    if (!csv_path.empty()) {
        runner::writeFile(csv_path, runner::toCsv(set, opts));
        std::fprintf(stderr, "wrote %s\n", csv_path.c_str());
    }
    if (!metrics_path.empty()) {
        runner::writeFile(metrics_path, runner::toMetricsJson(set));
        std::fprintf(stderr, "wrote %s\n", metrics_path.c_str());
    }
    if (!trace_out_path.empty()) {
        runner::writeFile(trace_out_path, runner::toTraceJson(set));
        std::fprintf(stderr, "wrote %s\n", trace_out_path.c_str());
    }
    if (!prof_out_path.empty()) {
        std::vector<prof::BenchRun> bruns;
        for (const auto& r : set.results) {
            if (!r.profile)
                continue; // resumed runs carry no profile
            prof::BenchRun br;
            br.label = r.label + "/" + r.policy;
            br.benchmark = r.benchmark;
            br.policy = r.policy;
            br.profile = *r.profile;
            bruns.push_back(std::move(br));
        }
        runner::writeFile(
            prof_out_path,
            prof::benchJson(display, bruns, prof::machineInfo(),
                            prof::gitSha()));
        std::fprintf(stderr, "wrote %s\n", prof_out_path.c_str());
    }
    return failed ? 1 : 0;
}

} // namespace
