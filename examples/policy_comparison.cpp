/**
 * @file
 * Example: compare every implemented LLC management policy on a
 * selection of benchmarks, printing MPKI and speedup over LRU. The
 * benchmark × policy product is declared as one RunRequest batch and
 * executed by the parallel ExperimentRunner.
 *
 * Usage: policy_comparison [--jobs N] [instructions]
 *                          [benchmark indices...]
 * Defaults to 800k instructions over the whole suite, with worker
 * count picked from the hardware. MRP_POLICIES=A,B,C narrows the
 * policy list.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runner/experiment_runner.hpp"
#include "trace/spec.hpp"
#include "trace/workloads.hpp"
#include "util/math_util.hpp"

int
main(int argc, char** argv)
{
    using namespace mrp;

    unsigned jobs = 0;
    std::vector<const char*> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else
            positional.push_back(argv[i]);
    }
    InstCount insts = 800000;
    if (!positional.empty())
        insts = std::strtoull(positional[0], nullptr, 10);
    std::vector<unsigned> benches;
    for (std::size_t i = 1; i < positional.size(); ++i)
        benches.push_back(
            static_cast<unsigned>(std::atoi(positional[i])));
    if (benches.empty())
        for (unsigned i = 0; i < trace::suiteSize(); ++i)
            benches.push_back(i);

    std::vector<std::string> policies = {
        "LRU", "SRRIP", "DRRIP", "MDPP", "SHiP", "SDBP",
        "Perceptron", "Hawkeye", "MPPPB"};
    if (const char* env = std::getenv("MRP_POLICIES")) {
        policies.clear();
        std::string s(env);
        std::size_t pos = 0;
        while (pos < s.size()) {
            const auto comma = s.find(',', pos);
            policies.push_back(
                s.substr(pos, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - pos));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }
    policies.push_back("MIN");

    // Specs, not traces: each worker generates its own copy of the
    // workload when the run executes, so nothing is held in memory
    // across the whole batch.
    std::vector<trace::TraceSpec> specs;
    specs.reserve(benches.size());
    for (const unsigned b : benches)
        specs.push_back(trace::TraceSpec::suite(b, insts));

    std::vector<runner::RunRequest> batch;
    batch.reserve(specs.size() * policies.size());
    for (const auto& spec : specs)
        for (const auto& p : policies)
            batch.push_back(runner::RunRequest::singleCore(
                spec, runner::PolicySpec::byName(p)));

    const runner::ExperimentRunner pool(jobs);
    const auto set = pool.run(batch);
    std::fprintf(stderr, "# %zu runs, %u worker(s), %.2fs wall\n",
                 set.results.size(), set.jobs, set.wallSeconds);

    std::printf("%-16s", "benchmark");
    for (const auto& p : policies)
        std::printf(" %10s", p.c_str());
    std::printf("\n");

    const std::size_t stride = policies.size();
    std::vector<std::vector<double>> speedups(policies.size());
    std::vector<std::vector<double>> mpkis(policies.size());
    for (std::size_t b = 0; b < specs.size(); ++b) {
        std::printf("%-16s", specs[b].displayName().c_str());
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const std::size_t idx = b * stride + p;
            const double speedup = set.speedupOver(idx, "LRU");
            speedups[p].push_back(speedup);
            mpkis[p].push_back(set.results[idx].mpki);
            std::printf(" %5.2f/%4.1f", speedup,
                        set.results[idx].mpki);
        }
        std::printf("\n");
    }

    std::printf("\n%-16s", "geomean speedup");
    for (const auto& col : speedups)
        std::printf(" %10.4f", geomean(col));
    std::printf("\n%-16s", "mean mpki");
    for (const auto& col : mpkis)
        std::printf(" %10.3f", mean(col));
    std::printf("\n");
    return 0;
}
