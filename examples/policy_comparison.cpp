/**
 * @file
 * Example: compare every implemented LLC management policy on a
 * selection of benchmarks, printing MPKI and speedup over LRU.
 *
 * Usage: policy_comparison [instructions] [benchmark indices...]
 * Defaults to 800k instructions over a representative subset.
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "sim/single_core.hpp"
#include "trace/workloads.hpp"
#include "util/math_util.hpp"

int
main(int argc, char** argv)
{
    using namespace mrp;

    InstCount insts = 800000;
    if (argc > 1)
        insts = std::strtoull(argv[1], nullptr, 10);
    std::vector<unsigned> benches;
    for (int i = 2; i < argc; ++i)
        benches.push_back(static_cast<unsigned>(std::atoi(argv[i])));
    if (benches.empty())
        for (unsigned i = 0; i < trace::suiteSize(); ++i)
            benches.push_back(i);

    std::vector<std::string> policies = {
        "LRU", "SRRIP", "DRRIP", "MDPP", "SHiP", "SDBP",
        "Perceptron", "Hawkeye", "MPPPB"};
    if (const char* env = std::getenv("MRP_POLICIES")) {
        policies.clear();
        std::string s(env);
        std::size_t pos = 0;
        while (pos < s.size()) {
            const auto comma = s.find(',', pos);
            policies.push_back(
                s.substr(pos, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - pos));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }

    std::map<std::string, std::vector<double>> speedups;
    std::map<std::string, std::vector<double>> mpkis;

    std::printf("%-16s", "benchmark");
    for (const auto& p : policies)
        std::printf(" %10s", p.c_str());
    std::printf(" %10s\n", "MIN");

    for (const unsigned b : benches) {
        const auto trace = trace::makeSuiteTrace(b, insts);
        std::printf("%-16s", trace.name().c_str());
        double lru_ipc = 0.0;
        for (const auto& p : policies) {
            const auto r = sim::runSingleCore(
                trace, sim::makePolicyFactory(p), {});
            if (p == "LRU")
                lru_ipc = r.ipc;
            const double speedup = r.ipc / lru_ipc;
            speedups[p].push_back(speedup);
            mpkis[p].push_back(r.mpki);
            std::printf(" %5.2f/%4.1f", speedup, r.mpki);
        }
        const auto rmin = sim::runSingleCoreMin(trace, {});
        speedups["MIN"].push_back(rmin.ipc / lru_ipc);
        mpkis["MIN"].push_back(rmin.mpki);
        std::printf(" %5.2f/%4.1f\n", rmin.ipc / lru_ipc, rmin.mpki);
    }

    std::printf("\n%-16s", "geomean speedup");
    for (const auto& p : policies)
        std::printf(" %10.4f", geomean(speedups[p]));
    std::printf(" %10.4f\n", geomean(speedups["MIN"]));
    std::printf("%-16s", "mean mpki");
    for (const auto& p : policies)
        std::printf(" %10.3f", mean(mpkis[p]));
    std::printf(" %10.3f\n", mean(mpkis["MIN"]));
    return 0;
}
