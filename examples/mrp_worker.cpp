/**
 * @file
 * Queue worker: one process of the distributed sweep service.
 *
 * Speaks the line protocol of queue/wire.hpp on stdin/stdout: sends
 * HELLO (pid + schema), then for each JOB line executes the request
 * with the single-run runner path — identical simulation code to the
 * in-process ExperimentRunner, which is what makes distributed
 * results byte-identical — while a background thread emits HB
 * heartbeats, and answers with a RESULT line carrying the checkpoint
 * resultJson bytes. Exits on SHUTDOWN or stdin EOF. All simulation
 * failures are relayed as typed error results, never as a crash.
 *
 * Observability (schema v2): with --ship-obs the worker enables
 * telemetry and profiling locally for each run and ships the final
 * registry snapshot plus the mrp_prof phase tree as an OBS line
 * directly before the RESULT of the same lease. The RESULT bytes are
 * untouched (telemetry/profiling are excluded from resultJson by the
 * checkpoint contract), so study reports stay byte-identical with
 * shipping on or off. A payload whose serialization exceeds
 * --obs-max-bytes is replaced by a truncated=true stub of scalars.
 *
 * Standalone dumps (parity with mrp_sim_cli): --metrics-out writes
 * one mrp-worker-metrics-v1 document at exit — the merge of every
 * executed run's telemetry snapshot plus worker.jobs_* counters —
 * and --prof-out one mrp-worker-prof-v1 document holding each run's
 * phase tree. Both imply the corresponding per-run collection even
 * without --ship-obs.
 *
 * Usage (normally spawned by the broker, attachable by hand):
 *   mrp_worker [--heartbeat-ms N] [--timeout SECONDS]
 *              [--ship-obs] [--obs-max-bytes N]
 *              [--metrics-out PATH] [--prof-out PATH]
 *              [--fault SITE:KIND[:FIRSTHIT[:MAXFIRES]]]...
 *              [--chaos-wedge SUBSTR[:MARKERFILE]]
 *
 * --chaos-wedge (tests/CI only): on receiving a job whose label
 * contains SUBSTR, raise(SIGSTOP) — the process freezes, heartbeats
 * stop, and the broker's lease expiry machinery must recover. With a
 * MARKERFILE the wedge is one-shot (the file records it fired), so
 * the requeued attempt succeeds; without one, every attempt wedges
 * and the job must exhaust its lease budget.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/payload.hpp"
#include "prof/export.hpp"
#include "queue/wire.hpp"
#include "runner/checkpoint.hpp"
#include "runner/experiment_runner.hpp"
#include "telemetry/export.hpp"
#include "util/fault_injection.hpp"
#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace {

using namespace mrp;

std::mutex g_out_mutex;

void
emitLine(const std::string& line)
{
    std::lock_guard<std::mutex> lock(g_out_mutex);
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
}

bool
fileExists(const std::string& path)
{
    std::ifstream f(path);
    return static_cast<bool>(f);
}

void
writeFile(const std::string& path, const std::string& text)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    fatalIf(f == nullptr, ErrorCode::Io,
            "cannot open " + path + " for writing");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mrp_worker [--heartbeat-ms N] [--timeout SECONDS]\n"
        "                  [--ship-obs] [--obs-max-bytes N]\n"
        "                  [--metrics-out PATH] [--prof-out PATH]\n"
        "                  [--fault SITE:KIND[:FIRSTHIT[:MAXFIRES]]]"
        "...\n"
        "                  [--chaos-wedge SUBSTR[:MARKERFILE]]\n");
    return 2;
}

int
run(int argc, char** argv)
{
    unsigned heartbeat_ms = 25;
    double timeout_seconds = 0.0;
    bool ship_obs = false;
    std::size_t obs_max_bytes = 4u << 20;
    std::string metrics_out;
    std::string prof_out;
    std::string wedge_substr;
    std::string wedge_marker;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            fatalIf(i + 1 >= argc, ErrorCode::Config,
                    "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--heartbeat-ms") {
            heartbeat_ms = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
            fatalIf(heartbeat_ms == 0, ErrorCode::Config,
                    "--heartbeat-ms must be positive");
        } else if (arg == "--timeout") {
            timeout_seconds = std::atof(next());
        } else if (arg == "--ship-obs") {
            ship_obs = true;
        } else if (arg == "--obs-max-bytes") {
            obs_max_bytes = static_cast<std::size_t>(
                std::strtoull(next(), nullptr, 10));
            fatalIf(obs_max_bytes == 0, ErrorCode::Config,
                    "--obs-max-bytes must be positive");
        } else if (arg == "--metrics-out") {
            metrics_out = next();
        } else if (arg == "--prof-out") {
            prof_out = next();
        } else if (arg == "--fault") {
            fault::armFromSpec(next());
        } else if (arg == "--chaos-wedge") {
            const std::string spec = next();
            const auto colon = spec.find(':');
            wedge_substr = spec.substr(0, colon);
            if (colon != std::string::npos)
                wedge_marker = spec.substr(colon + 1);
            fatalIf(wedge_substr.empty(), ErrorCode::Config,
                    "--chaos-wedge needs a label substring");
        } else {
            return usage();
        }
    }

    const bool want_telemetry = ship_obs || !metrics_out.empty();
    const bool want_profile = ship_obs || !prof_out.empty();

    emitLine(queue::helloLine(static_cast<std::uint64_t>(getpid())));

    // Heartbeat thread: ticks whenever a job is executing, echoing
    // the lease's span id. SIGSTOP (the chaos wedge) freezes this
    // thread with the rest of the process, which is exactly the hang
    // signature the broker's lease expiry machinery exists to catch.
    std::atomic<bool> shutdown{false};
    std::atomic<bool> beating{false};
    std::atomic<std::uint64_t> beat_job{0};
    std::atomic<std::uint64_t> beat_span{0};
    std::thread heartbeats([&] {
        std::uint64_t seq = 0;
        while (!shutdown.load()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(heartbeat_ms));
            if (beating.load())
                emitLine(queue::heartbeatLine(beat_job.load(),
                                              beat_span.load(),
                                              seq++));
        }
    });

    // Exit-dump accumulators (only filled when requested).
    telemetry::Snapshot merged;
    std::uint64_t jobs_completed = 0;
    std::uint64_t jobs_failed = 0;
    std::vector<std::pair<std::uint64_t, std::string>> phase_docs;

    int rc = 0;
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line == queue::kShutdownLine)
            break;
        const auto job = queue::parseJob(line);
        if (!job) {
            std::fprintf(stderr,
                         "mrp_worker: unparsable broker line\n");
            rc = 3;
            break;
        }
        auto request = queue::requestFromJson(
            job->json, "job " + std::to_string(job->jobId));

        if (!wedge_substr.empty()) {
            const std::string label =
                request.label.empty() && !request.sources.empty()
                    ? request.sources[0].displayName()
                    : request.label;
            if (label.find(wedge_substr) != std::string::npos &&
                (wedge_marker.empty() || !fileExists(wedge_marker))) {
                if (!wedge_marker.empty())
                    std::ofstream(wedge_marker) << "wedged\n";
                ::raise(SIGSTOP); // freeze until SIGKILLed
            }
        }

        // Observability is enabled worker-locally (the wire refuses
        // telemetry-enabled requests): both telemetry and profiling
        // are observation-only by contract, so the resultJson bytes
        // below are identical either way.
        if (want_telemetry)
            std::visit([](auto& cfg) { cfg.telemetry.enabled = true; },
                       request.config);

        beat_job.store(job->jobId);
        beat_span.store(job->spanId);
        beating.store(true);
        runner::RunnerOptions opts;
        opts.timeoutSeconds = timeout_seconds;
        opts.maxRetries = 0; // the broker owns retry policy
        opts.profile = want_profile;
        const auto result =
            runner::ExperimentRunner::runOne(request, job->jobId,
                                             opts);
        beating.store(false);

        result.ok() ? ++jobs_completed : ++jobs_failed;
        if (want_telemetry && result.telemetry)
            telemetry::mergeInto(merged,
                                 result.telemetry->finalSnapshot);
        if (!prof_out.empty() && result.profile)
            phase_docs.emplace_back(
                job->jobId,
                prof::phaseTreeJson(result.profile->root, 4));

        if (ship_obs) {
            obs::WorkerRunObs o;
            o.label = result.label;
            o.wallSeconds = result.wallSeconds;
            o.accesses =
                result.telemetry ? result.telemetry->accesses : 0;
            if (result.telemetry)
                o.metrics = result.telemetry->finalSnapshot;
            if (result.profile)
                o.phases = result.profile->root;
            std::string payload = obs::workerObsJson(o);
            if (payload.size() > obs_max_bytes) {
                // Keep the scalar facts, drop the bulk.
                obs::WorkerRunObs stub;
                stub.label = o.label;
                stub.wallSeconds = o.wallSeconds;
                stub.accesses = o.accesses;
                stub.truncated = true;
                payload = obs::workerObsJson(stub);
            }
            emitLine(queue::obsLine(job->jobId, job->spanId,
                                    payload));
        }
        emitLine(queue::resultLine(job->jobId, job->spanId,
                                   runner::resultJson(result)));
    }

    shutdown.store(true);
    heartbeats.join();

    if (!metrics_out.empty()) {
        std::string doc = "{\n  " + json::key("doc") +
                          json::str("mrp-worker-metrics-v1");
        doc += ",\n  " + json::key("pid") +
               std::to_string(static_cast<std::uint64_t>(getpid()));
        doc += ",\n  " + json::key("jobsCompleted") +
               std::to_string(jobs_completed);
        doc += ",\n  " + json::key("jobsFailed") +
               std::to_string(jobs_failed);
        doc += ",\n  " + json::key("metrics") +
               telemetry::snapshotJson(merged, "  ");
        doc += "\n}\n";
        writeFile(metrics_out, doc);
    }
    if (!prof_out.empty()) {
        std::string doc = "{\n  " + json::key("doc") +
                          json::str("mrp-worker-prof-v1");
        doc += ",\n  " + json::key("runs") + "[";
        for (std::size_t i = 0; i < phase_docs.size(); ++i) {
            doc += i ? ",\n    " : "\n    ";
            doc += "{" + json::key("job") +
                   std::to_string(phase_docs[i].first) + ", " +
                   json::key("phases") + phase_docs[i].second + "}";
        }
        doc += phase_docs.empty() ? "]" : "\n  ]";
        doc += "\n}\n";
        writeFile(prof_out, doc);
    }
    return rc;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "mrp_worker: %s [%s]\n", e.what(),
                     errorCodeName(e.code()));
        return 2;
    }
}
