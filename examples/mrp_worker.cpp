/**
 * @file
 * Queue worker: one process of the distributed sweep service.
 *
 * Speaks the line protocol of queue/wire.hpp on stdin/stdout: sends
 * HELLO (pid + schema), then for each JOB line executes the request
 * with the single-run runner path — identical simulation code to the
 * in-process ExperimentRunner, which is what makes distributed
 * results byte-identical — while a background thread emits HB
 * heartbeats, and answers with a RESULT line carrying the checkpoint
 * resultJson bytes. Exits on SHUTDOWN or stdin EOF. All simulation
 * failures are relayed as typed error results, never as a crash.
 *
 * Usage (normally spawned by the broker, attachable by hand):
 *   mrp_worker [--heartbeat-ms N] [--timeout SECONDS]
 *              [--fault SITE:KIND[:FIRSTHIT[:MAXFIRES]]]...
 *              [--chaos-wedge SUBSTR[:MARKERFILE]]
 *
 * --chaos-wedge (tests/CI only): on receiving a job whose label
 * contains SUBSTR, raise(SIGSTOP) — the process freezes, heartbeats
 * stop, and the broker's lease expiry machinery must recover. With a
 * MARKERFILE the wedge is one-shot (the file records it fired), so
 * the requeued attempt succeeds; without one, every attempt wedges
 * and the job must exhaust its lease budget.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include <unistd.h>

#include "queue/wire.hpp"
#include "runner/checkpoint.hpp"
#include "runner/experiment_runner.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"

namespace {

using namespace mrp;

std::mutex g_out_mutex;

void
emitLine(const std::string& line)
{
    std::lock_guard<std::mutex> lock(g_out_mutex);
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
}

bool
fileExists(const std::string& path)
{
    std::ifstream f(path);
    return static_cast<bool>(f);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mrp_worker [--heartbeat-ms N] [--timeout SECONDS]\n"
        "                  [--fault SITE:KIND[:FIRSTHIT[:MAXFIRES]]]"
        "...\n"
        "                  [--chaos-wedge SUBSTR[:MARKERFILE]]\n");
    return 2;
}

int
run(int argc, char** argv)
{
    unsigned heartbeat_ms = 25;
    double timeout_seconds = 0.0;
    std::string wedge_substr;
    std::string wedge_marker;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            fatalIf(i + 1 >= argc, ErrorCode::Config,
                    "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--heartbeat-ms") {
            heartbeat_ms = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
            fatalIf(heartbeat_ms == 0, ErrorCode::Config,
                    "--heartbeat-ms must be positive");
        } else if (arg == "--timeout") {
            timeout_seconds = std::atof(next());
        } else if (arg == "--fault") {
            fault::armFromSpec(next());
        } else if (arg == "--chaos-wedge") {
            const std::string spec = next();
            const auto colon = spec.find(':');
            wedge_substr = spec.substr(0, colon);
            if (colon != std::string::npos)
                wedge_marker = spec.substr(colon + 1);
            fatalIf(wedge_substr.empty(), ErrorCode::Config,
                    "--chaos-wedge needs a label substring");
        } else {
            return usage();
        }
    }

    emitLine(queue::helloLine(static_cast<std::uint64_t>(getpid())));

    // Heartbeat thread: ticks whenever a job is executing. SIGSTOP
    // (the chaos wedge) freezes this thread with the rest of the
    // process, which is exactly the hang signature the broker's
    // lease expiry machinery exists to catch.
    std::atomic<bool> shutdown{false};
    std::atomic<bool> beating{false};
    std::atomic<std::uint64_t> beat_job{0};
    std::thread heartbeats([&] {
        std::uint64_t seq = 0;
        while (!shutdown.load()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(heartbeat_ms));
            if (beating.load())
                emitLine(queue::heartbeatLine(beat_job.load(),
                                              seq++));
        }
    });

    int rc = 0;
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line == queue::kShutdownLine)
            break;
        const auto job = queue::parseJob(line);
        if (!job) {
            std::fprintf(stderr,
                         "mrp_worker: unparsable broker line\n");
            rc = 3;
            break;
        }
        const auto request = queue::requestFromJson(
            job->json, "job " + std::to_string(job->jobId));

        if (!wedge_substr.empty()) {
            const std::string label =
                request.label.empty() && !request.sources.empty()
                    ? request.sources[0].displayName()
                    : request.label;
            if (label.find(wedge_substr) != std::string::npos &&
                (wedge_marker.empty() || !fileExists(wedge_marker))) {
                if (!wedge_marker.empty())
                    std::ofstream(wedge_marker) << "wedged\n";
                ::raise(SIGSTOP); // freeze until SIGKILLed
            }
        }

        beat_job.store(job->jobId);
        beating.store(true);
        runner::RunnerOptions opts;
        opts.timeoutSeconds = timeout_seconds;
        opts.maxRetries = 0; // the broker owns retry policy
        const auto result =
            runner::ExperimentRunner::runOne(request, job->jobId,
                                             opts);
        beating.store(false);
        emitLine(queue::resultLine(job->jobId,
                                   runner::resultJson(result)));
    }

    shutdown.store(true);
    heartbeats.join();
    return rc;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "mrp_worker: %s [%s]\n", e.what(),
                     errorCodeName(e.code()));
        return 2;
    }
}
