/**
 * @file
 * Shared plumbing of the sweep CLIs (mrp_sweep_cli, mrp_broker_cli):
 * option parsing for the search space / corpus / strategy knobs, the
 * study assembly, and the report + stderr-summary emission. Both
 * binaries build the identical Study from identical flags — only the
 * execution vehicle differs (in-process runner vs. queue broker) —
 * which is what makes their reports byte-comparable, the check the
 * CI chaos job performs.
 */

#ifndef MRP_EXAMPLES_SWEEP_CLI_COMMON_HPP
#define MRP_EXAMPLES_SWEEP_CLI_COMMON_HPP

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cache/geometry.hpp"
#include "cache/hierarchy.hpp"
#include "mrc/engine.hpp"
#include "mrc/objective.hpp"
#include "mrc/profile.hpp"
#include "runner/report.hpp"
#include "sweep/study.hpp"
#include "trace/spec.hpp"
#include "util/logging.hpp"

namespace mrp::cli {

inline std::vector<std::string>
splitCommas(const std::string& s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const auto comma = s.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

/** One streaming-family corpus member ("zipf[:THETA]", "blkio",
 * "phase") at the full corpus length. */
inline trace::TraceSpec
corpusFamilySpec(const std::string& name, InstCount insts,
                 std::uint64_t seed)
{
    if (name == "zipf" || name.rfind("zipf:", 0) == 0) {
        trace::ZipfParams p;
        p.instructions = insts;
        p.seed = seed;
        if (name.size() > 5) {
            p.theta = std::atof(name.c_str() + 5);
            p.name = name;
        }
        return trace::TraceSpec::zipf(p);
    }
    if (name == "blkio") {
        trace::BlockIoParams p;
        p.instructions = insts;
        p.seed = seed;
        return trace::TraceSpec::blockIo(p);
    }
    if (name == "phase") {
        trace::ZipfParams zp;
        zp.instructions = insts;
        zp.seed = seed;
        trace::BlockIoParams bp;
        bp.instructions = insts;
        bp.seed = seed + 1;
        std::vector<trace::TraceSpec> kids;
        kids.push_back(trace::TraceSpec::zipf(zp));
        kids.push_back(trace::TraceSpec::blockIo(bp));
        return trace::TraceSpec::phaseMix(
            "phase", insts, std::max<InstCount>(insts / 8, 1),
            std::move(kids));
    }
    fatal(ErrorCode::Config,
          "unknown --corpus family '" + name +
              "' (want zipf[:THETA], blkio, or phase)");
}

/** Every option shared by the sweep CLIs, at its default. */
struct SweepCliConfig
{
    std::string studyName = "mrp_sweep_cli";
    std::string strategyName = "genetic";
    std::string objectiveName = "geomean";
    std::string journalPath;
    std::string outPath;
    bool resume = false;
    unsigned generations = 5;
    unsigned population = 16;
    InstCount budgetInsts = 400000;
    std::vector<unsigned> workloads = {2,  7,  9,  12, 14,
                                       16, 18, 21, 25, 30};
    std::vector<std::string> corpusFamilies;
    bool decodeAhead = false;
    Addr llcKb = 2048;
    unsigned slots = 16;
    bool searchThresholds = false;
    bool searchSampler = false;
    std::uint64_t seed = 1;
    unsigned jobs = 0;
    // genetic knobs
    unsigned tournament = 3;
    double crossover = 0.9;
    double mutation = 0.08;
    unsigned elites = 2;
    // halving knobs
    unsigned initial = 16;
    unsigned eta = 2;
    unsigned rungs = 3;
    std::vector<sweep::GridAxis> gridAxes;
    // MRC engine knobs
    unsigned mrcRateLog2 = 0; //!< nonzero = SHARDS-sampled rung 0
    std::string mrcOutPath;   //!< write the corpus MrcProfile JSON
};

/** Usage text of the shared flags (callers append their own). */
inline const char* const kSweepUsage =
    "       [--strategy genetic|random|halving|grid]\n"
    "       [--generations N] [--population N] [--budget-insts N]\n"
    "       [--workloads I,J,...] [--corpus FAM[,FAM...]]\n"
    "       [--decode-ahead] [--llc-kb N] [--slots N]\n"
    "       [--search-thresholds] [--search-sampler]\n"
    "       [--objective geomean|mean] [--seed N] [--jobs N]\n"
    "       [--journal FILE] [--resume] [--out FILE] [--name NAME]\n"
    "       genetic: [--tournament N] [--crossover R]\n"
    "                [--mutation R] [--elites N]\n"
    "       halving: [--initial N] [--eta N] [--rungs N]\n"
    "                [--mrc-rung RATELOG2]\n"
    "       grid:    --grid GENE:V1,V2,...  (one axis each)\n"
    "       [--mrc-out FILE]  (corpus miss-ratio-curve profiles)\n";

/**
 * Consume argv[i] (advancing i past any value) if it is a shared
 * sweep option; false means the caller owns the flag.
 */
inline bool
parseSweepArg(SweepCliConfig& c, int argc, char** argv, int& i)
{
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
        fatalIf(i + 1 >= argc, ErrorCode::Config,
                "missing value for " + arg);
        return argv[++i];
    };
    if (arg == "--name") {
        c.studyName = next();
    } else if (arg == "--strategy") {
        c.strategyName = next();
    } else if (arg == "--objective") {
        c.objectiveName = next();
    } else if (arg == "--generations") {
        c.generations =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--population") {
        c.population =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--budget-insts") {
        c.budgetInsts = std::strtoull(next(), nullptr, 10);
        fatalIf(c.budgetInsts == 0,
                "--budget-insts must be positive");
    } else if (arg == "--workloads") {
        c.workloads.clear();
        for (const auto& w : splitCommas(next()))
            c.workloads.push_back(static_cast<unsigned>(
                std::strtoul(w.c_str(), nullptr, 10)));
    } else if (arg == "--corpus") {
        c.corpusFamilies = splitCommas(next());
    } else if (arg == "--decode-ahead") {
        c.decodeAhead = true;
    } else if (arg == "--llc-kb") {
        c.llcKb = std::strtoull(next(), nullptr, 10);
        // Reject impossible geometries at the flag, not mid-study.
        const std::string why = cache::CacheGeometry::describeInvalid(
            c.llcKb * 1024, cache::HierarchyConfig{}.llcWays);
        fatalIf(!why.empty(), ErrorCode::Config,
                "--llc-kb " + std::to_string(c.llcKb) + ": " + why);
    } else if (arg == "--slots") {
        c.slots =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--search-thresholds") {
        c.searchThresholds = true;
    } else if (arg == "--search-sampler") {
        c.searchSampler = true;
    } else if (arg == "--seed") {
        c.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
        c.jobs =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--journal") {
        c.journalPath = next();
    } else if (arg == "--resume") {
        c.resume = true;
    } else if (arg == "--out") {
        c.outPath = next();
    } else if (arg == "--tournament") {
        c.tournament =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--crossover") {
        c.crossover = std::atof(next());
    } else if (arg == "--mutation") {
        c.mutation = std::atof(next());
    } else if (arg == "--elites") {
        c.elites =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--initial") {
        c.initial =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--eta") {
        c.eta =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--rungs") {
        c.rungs =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--mrc-rung") {
        c.mrcRateLog2 =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        fatalIf(c.mrcRateLog2 == 0 || c.mrcRateLog2 >= 24,
                ErrorCode::Config,
                "--mrc-rung rate log2 must be in [1, 24)");
    } else if (arg == "--mrc-out") {
        c.mrcOutPath = next();
    } else if (arg == "--grid") {
        // GENE:V1,V2,... — one axis of the cross product.
        const std::string spec = next();
        const auto colon = spec.find(':');
        fatalIf(colon == std::string::npos,
                "--grid expects GENE:V1,V2,...");
        sweep::GridAxis axis;
        axis.gene = std::strtoul(spec.c_str(), nullptr, 10);
        for (const auto& v : splitCommas(spec.substr(colon + 1)))
            axis.values.push_back(std::atoi(v.c_str()));
        c.gridAxes.push_back(std::move(axis));
    } else {
        return false;
    }
    return true;
}

/**
 * The assembled study ingredients. Heap-held so references between
 * them (strategy -> space, objective -> evaluator) stay valid for
 * the setup's lifetime.
 */
struct StudySetup
{
    sweep::SearchSpace space;
    std::shared_ptr<sweep::CorpusEvaluator> evaluator;
    std::unique_ptr<sweep::Objective> objective;
    std::unique_ptr<sweep::Strategy> strategy;
    sweep::StudyConfig studyConfig;
};

/** Build the study exactly as both CLIs must (see file comment);
 * throws FatalError(Config) on a bad combination, returns null on a
 * plain usage error (unknown strategy/objective name). */
inline std::unique_ptr<StudySetup>
buildStudySetup(const SweepCliConfig& c)
{
    fatalIf(c.workloads.empty(), "--workloads list is empty");
    auto s = std::make_unique<StudySetup>();
    s->space.featureSlots = c.slots;
    s->space.searchThresholds = c.searchThresholds;
    s->space.searchSampler = c.searchSampler;

    sweep::CorpusConfig corpus;
    corpus.workloads = c.workloads;
    for (std::size_t f = 0; f < c.corpusFamilies.size(); ++f)
        corpus.corpus.push_back(corpusFamilySpec(
            c.corpusFamilies[f], c.budgetInsts, c.seed + f));
    corpus.fullInstructions = c.budgetInsts;
    corpus.sim.hierarchy.llcBytes = c.llcKb * 1024;
    corpus.jobs = c.jobs;
    corpus.openOptions.decodeAhead = c.decodeAhead;
    s->evaluator = std::make_shared<sweep::CorpusEvaluator>(corpus);
    if (c.objectiveName != "mean" && c.objectiveName != "geomean")
        return nullptr;
    const auto aggregate =
        c.objectiveName == "mean"
            ? sweep::CorpusMpkiObjective::Aggregate::Mean
            : sweep::CorpusMpkiObjective::Aggregate::Geomean;
    if (c.mrcRateLog2 > 0) {
        fatalIf(c.strategyName != "halving", ErrorCode::Config,
                "--mrc-rung needs --strategy halving (it flags the "
                "halving ladder's rung 0 for sampled evaluation)");
        s->objective = std::make_unique<mrc::SampledRungObjective>(
            s->evaluator, c.mrcRateLog2, aggregate);
    } else {
        s->objective = std::make_unique<sweep::CorpusMpkiObjective>(
            s->evaluator, aggregate);
    }

    if (c.strategyName == "genetic") {
        sweep::GeneticStrategy::Config gc;
        gc.generations = c.generations;
        gc.population = c.population;
        gc.tournament = c.tournament;
        gc.crossoverRate = c.crossover;
        gc.mutationRate = c.mutation;
        gc.elites = c.elites;
        // Start from the paper-default configuration so the search
        // can only improve on it (elitism keeps the incumbent alive).
        // A space with fewer slots than the paper's 16 features can't
        // hold the incumbent; those searches start purely random.
        if (s->space.base.predictor.features.size() <=
            s->space.featureSlots)
            gc.seeds.push_back(s->space.encode(s->space.base));
        s->strategy = std::make_unique<sweep::GeneticStrategy>(
            s->space, gc, c.seed);
    } else if (c.strategyName == "random") {
        s->strategy = std::make_unique<sweep::RandomStrategy>(
            s->space, c.generations, c.population, c.seed);
    } else if (c.strategyName == "halving") {
        sweep::HalvingStrategy::Config hc;
        hc.initial = c.initial;
        hc.eta = c.eta;
        hc.rungs = c.rungs;
        hc.fullInstructions = c.budgetInsts;
        hc.mrcRateLog2 = c.mrcRateLog2;
        s->strategy = std::make_unique<sweep::HalvingStrategy>(
            s->space, hc, c.seed);
    } else if (c.strategyName == "grid") {
        fatalIf(c.gridAxes.empty(),
                "--strategy grid needs at least one --grid axis");
        s->strategy = std::make_unique<sweep::GridStrategy>(
            s->space, s->space.encode(s->space.base), c.gridAxes);
    } else {
        return nullptr;
    }

    s->studyConfig.name = c.studyName;
    s->studyConfig.seed = c.seed;
    s->studyConfig.jobs = c.jobs;
    s->studyConfig.journalPath = c.journalPath;
    if (c.resume) {
        fatalIf(c.journalPath.empty(), "--resume requires --journal");
        std::ifstream probe(c.journalPath);
        if (!probe)
            std::fprintf(stderr,
                         "note: journal %s not found; starting cold\n",
                         c.journalPath.c_str());
        s->studyConfig.resume = true;
    }
    return s;
}

/**
 * --mrc-out: one pass of the MRC engine over the full-length corpus
 * (shards-adj, the sweep's --mrc-rung rate when set), written as the
 * deterministic mrp.mrc.v1 corpus document. The study's L1/L2 sizing
 * is reused so profiles and simulations see the same filtered stream.
 */
inline void
maybeWriteMrcProfiles(StudySetup& s, const SweepCliConfig& c)
{
    if (c.mrcOutPath.empty())
        return;
    mrc::MrcConfig mc;
    mc.hierarchy = s.evaluator->config().sim.hierarchy;
    if (c.mrcRateLog2 > 0)
        mc.rateLog2 = c.mrcRateLog2;
    const auto profiles =
        mrc::profileCorpus(s.evaluator->specs(0), mc, c.jobs,
                           s.evaluator->config().openOptions);
    runner::writeFile(c.mrcOutPath, mrc::corpusJson(profiles));
    std::fprintf(stderr, "wrote %s\n", c.mrcOutPath.c_str());
}

/** Write the deterministic report (stdout or --out) and the human
 * summary (stderr). Returns the process exit code. */
inline int
emitStudyReport(const sweep::Study& study,
                const sweep::StudyResult& result,
                const SweepCliConfig& c)
{
    const std::string report = study.reportJson(result);
    if (c.outPath.empty()) {
        std::fputs(report.c_str(), stdout);
    } else {
        runner::writeFile(c.outPath, report);
        std::fprintf(stderr, "wrote %s\n", c.outPath.c_str());
    }

    for (const auto& g : result.generations)
        std::fprintf(stderr,
                     "gen %u: %zu candidates (%zu simulated, %zu "
                     "cached), best fitness %.4f, mean %.4f\n",
                     g.generation, g.evaluations, g.simulations,
                     g.cacheHits, g.bestFitness, g.meanFitness);
    if (result.hasBest) {
        const auto& b = result.candidates[result.bestId];
        std::fprintf(
            stderr,
            "best: candidate %zu, corpus MPKI %.4f, %llu "
            "predictor bits\n",
            b.id, b.mpki,
            static_cast<unsigned long long>(b.predictorBits));
        return 0;
    }
    std::fprintf(stderr, "no successful candidate\n");
    return 1;
}

} // namespace mrp::cli

#endif // MRP_EXAMPLES_SWEEP_CLI_COMMON_HPP
