/**
 * @file
 * Miss-ratio-curve profiler: one streaming pass per workload over the
 * src/mrc/ engine, emitting the deterministic mrp.mrc.v1 corpus
 * document — the demand miss ratio of an LRU LLC at every profiled
 * capacity, behind the simulator's exact L1/L2 filter.
 *
 * Usage:
 *   mrp_mrc_cli [--workloads I,J,...] [--corpus FAM[,FAM...]]
 *               [--insts N] [--seed N] [--sizes-kb A,B,...]
 *               [--mode exact|shards|shards-adj] [--rate-log2 K]
 *               [--max-samples N] [--warmup F] [--jobs N]
 *               [--decode-ahead] [--out FILE]
 *               [--check-sim] [--tolerance-pp X]
 *               [--suggest-partition --llc-kb N --llc-ways W
 *                [--min-ways M] [--knee-fraction F]]
 *
 * --workloads profiles suite traces; --corpus the streaming families
 * ("zipf[:THETA]", "blkio", "phase") — the same corpus vocabulary the
 * sweep CLIs use. One pass produces every size on the ladder at once;
 * that is the whole point of the engine versus running a simulation
 * per size.
 *
 * --suggest-partition treats the corpus as one tenant per workload
 * and emits a knee-based LLC way split for the multi-tenant driver
 * (mrp_sim_cli --partition ...): each tenant's MRC knee — the
 * smallest profiled capacity capturing --knee-fraction of its
 * achievable miss-ratio reduction — sets its share of --llc-ways by
 * largest-remainder rounding over an --llc-kb cache.
 *
 * --check-sim closes the loop: after profiling it simulates an LRU
 * LLC (prefetching off — the configuration the stack model mirrors)
 * at every profiled size and compares demand miss ratios. Any
 * |profile - simulation| above --tolerance-pp percentage points (default
 * 2) fails the run with exit code 1 — the CI mrc-smoke gate.
 *
 * The document is byte-identical at any --jobs and for any delivery
 * mode (--decode-ahead, chunking), like every report in this repo.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mrc/engine.hpp"
#include "mrc/partition_advisor.hpp"
#include "mrc/profile.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/report.hpp"
#include "sweep_cli_common.hpp"

namespace {

using namespace mrp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mrp_mrc_cli [--workloads I,J,...] "
        "[--corpus FAM[,FAM...]]\n"
        "       [--insts N] [--seed N] [--sizes-kb A,B,...]\n"
        "       [--mode exact|shards|shards-adj] [--rate-log2 K]\n"
        "       [--max-samples N] [--warmup F] [--jobs N]\n"
        "       [--decode-ahead] [--out FILE]\n"
        "       [--check-sim] [--tolerance-pp X]\n"
        "       [--suggest-partition --llc-kb N --llc-ways W\n"
        "        [--min-ways M] [--knee-fraction F]]\n");
    return 2;
}

struct Options
{
    std::vector<unsigned> workloads;
    std::vector<std::string> corpusFamilies;
    InstCount insts = 400000;
    std::uint64_t seed = 0;
    mrc::MrcConfig mrc;
    unsigned jobs = 0;
    bool decodeAhead = false;
    std::string outPath;
    bool checkSim = false;
    double tolerancePp = 2.0;
    bool suggestPartition = false;
    mrc::PartitionAdvisorConfig advisor;
};

/** The corpus at full length: suite indices and/or family names. */
std::vector<trace::TraceSpec>
buildCorpus(const Options& o)
{
    std::vector<trace::TraceSpec> corpus;
    for (const unsigned w : o.workloads)
        corpus.push_back(trace::TraceSpec::suite(w, o.insts, o.seed));
    for (std::size_t f = 0; f < o.corpusFamilies.size(); ++f)
        corpus.push_back(cli::corpusFamilySpec(o.corpusFamilies[f],
                                               o.insts, o.seed + f));
    fatalIf(corpus.empty(), ErrorCode::Config,
            "need --workloads and/or --corpus");
    return corpus;
}

/**
 * Simulate an LRU LLC (prefetch off) at every profiled size of every
 * profile and compare demand miss ratios. Returns the count of
 * (workload, size) cells whose gap exceeds the tolerance.
 */
std::size_t
checkAgainstSimulation(const std::vector<trace::TraceSpec>& corpus,
                       const std::vector<mrc::MrcProfile>& profiles,
                       const Options& o)
{
    sim::SingleCoreConfig sim;
    sim.hierarchy = o.mrc.hierarchy;
    sim.hierarchy.prefetchEnabled = false;
    sim.warmupFraction = o.mrc.warmupFraction;
    const auto policy = runner::PolicySpec::byName("LRU");

    std::vector<runner::RunRequest> batch;
    for (std::size_t w = 0; w < profiles.size(); ++w) {
        for (const auto& pt : profiles[w].points) {
            sim.hierarchy.llcBytes = pt.bytes;
            batch.push_back(runner::RunRequest::singleCore(
                corpus[w], policy, sim));
            batch.back().openOptions.decodeAhead = o.decodeAhead;
        }
    }
    const runner::ExperimentRunner pool(o.jobs);
    const auto set = pool.run(batch);

    std::size_t failures = 0;
    std::size_t r = 0;
    for (std::size_t w = 0; w < profiles.size(); ++w) {
        for (const auto& pt : profiles[w].points) {
            const auto& res = set.results[r++];
            fatalIf(!res.ok(), res.errorCode,
                    "check-sim run failed: " + res.error);
            const double simRatio =
                res.llcDemandAccesses == 0
                    ? 0.0
                    : static_cast<double>(res.llcDemandMisses) /
                          static_cast<double>(res.llcDemandAccesses);
            const double gapPp =
                std::abs(pt.missRatio - simRatio) * 100.0;
            const bool bad = gapPp > o.tolerancePp;
            if (bad)
                ++failures;
            std::fprintf(stderr,
                         "%s%s @ %llu KB: mrc %.4f sim %.4f "
                         "(gap %.2f pp)\n",
                         bad ? "FAIL " : "", profiles[w].benchmark.c_str(),
                         static_cast<unsigned long long>(pt.bytes / 1024),
                         pt.missRatio, simRatio, gapPp);
        }
    }
    return failures;
}

int
run(int argc, char** argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            fatalIf(i + 1 >= argc, ErrorCode::Config,
                    "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--workloads") {
            for (const auto& w : cli::splitCommas(next()))
                o.workloads.push_back(static_cast<unsigned>(
                    std::strtoul(w.c_str(), nullptr, 10)));
        } else if (arg == "--corpus") {
            o.corpusFamilies = cli::splitCommas(next());
        } else if (arg == "--insts") {
            o.insts = std::strtoull(next(), nullptr, 10);
            fatalIf(o.insts == 0, "--insts must be positive");
        } else if (arg == "--seed") {
            o.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--sizes-kb") {
            for (const auto& s : cli::splitCommas(next()))
                o.mrc.sizesBytes.push_back(
                    std::strtoull(s.c_str(), nullptr, 10) * 1024);
        } else if (arg == "--mode") {
            o.mrc.mode = mrc::parseMrcMode(next());
        } else if (arg == "--rate-log2") {
            o.mrc.rateLog2 = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--max-samples") {
            o.mrc.maxSamples = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            o.mrc.warmupFraction = std::atof(next());
        } else if (arg == "--jobs") {
            o.jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--decode-ahead") {
            o.decodeAhead = true;
        } else if (arg == "--out") {
            o.outPath = next();
        } else if (arg == "--check-sim") {
            o.checkSim = true;
        } else if (arg == "--tolerance-pp") {
            o.tolerancePp = std::atof(next());
        } else if (arg == "--suggest-partition") {
            o.suggestPartition = true;
        } else if (arg == "--llc-kb") {
            o.advisor.llcBytes =
                std::strtoull(next(), nullptr, 10) * 1024;
        } else if (arg == "--llc-ways") {
            o.advisor.llcWays = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--min-ways") {
            o.advisor.minWays = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--knee-fraction") {
            o.advisor.kneeFraction = std::atof(next());
        } else {
            return usage();
        }
    }

    const auto corpus = buildCorpus(o);
    trace::TraceSpec::OpenOptions opts;
    opts.decodeAhead = o.decodeAhead;
    const auto profiles =
        mrc::profileCorpus(corpus, o.mrc, o.jobs, opts);

    const std::string doc = mrc::corpusJson(profiles);
    if (!o.outPath.empty()) {
        runner::writeFile(o.outPath, doc);
        std::fprintf(stderr, "wrote %s\n", o.outPath.c_str());
    } else if (!o.suggestPartition) {
        std::fputs(doc.c_str(), stdout);
    }

    // One tenant per corpus entry: the advice document replaces the
    // profile corpus on stdout (use --out to keep both).
    if (o.suggestPartition) {
        const auto advice =
            mrc::suggestPartition(profiles, o.advisor);
        std::fputs(advice.toJson(o.advisor).c_str(), stdout);
        std::fprintf(stderr, "suggested --partition %s\n",
                     advice.partitionFlag().c_str());
    }

    if (o.checkSim &&
        checkAgainstSimulation(corpus, profiles, o) > 0)
        return 1;
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "mrp_mrc_cli: %s [%s]\n", e.what(),
                     errorCodeName(e.code()));
        return 2;
    }
}
