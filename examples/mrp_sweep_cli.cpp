/**
 * @file
 * Configuration-search driver: optimize MPPPB predictor configurations
 * over the synthetic training corpus with any of the sweep strategies
 * (genetic, random, grid, successive halving), producing the
 * deterministic study report.
 *
 * Usage:
 *   mrp_sweep_cli [--strategy genetic|random|halving|grid]
 *                 [--generations N] [--population N]
 *                 [--budget-insts N] [--workloads I,J,...]
 *                 [--corpus FAM[,FAM...]] [--decode-ahead]
 *                 [--llc-kb N]
 *                 [--slots N] [--search-thresholds] [--search-sampler]
 *                 [--objective geomean|mean] [--seed N] [--jobs N]
 *                 [--journal FILE] [--resume] [--out FILE]
 *                 [--prof-out FILE]
 *   genetic:  [--tournament N] [--crossover R] [--mutation R]
 *             [--elites N]
 *   halving:  [--initial N] [--eta N] [--rungs N]
 *   grid:     --grid GENE:V1,V2,...   (repeatable, one axis each)
 *
 * --corpus replaces the suite-index training corpus with streaming
 * generator families ("zipf", "zipf:THETA", "blkio", "phase"): every
 * candidate evaluation streams its workloads chunk by chunk instead of
 * materializing them, so corpus length is bounded by disk-free math
 * only, and successive-halving budget rungs regenerate each family at
 * the rung length (TraceSpec::withInstructions). --decode-ahead
 * overlaps generation/decoding with simulation; like every delivery
 * knob it cannot change the report.
 *
 * The report (stdout, or --out FILE) is a pure function of the search
 * space, strategy, seed, and objective — no wall-clock fields, no
 * dependence on --jobs. --journal makes the study crash-safe: every
 * evaluated candidate is appended to an fsync'd checkpoint journal and
 * the in-flight generation's raw runs stream into FILE.runs, so a
 * killed sweep rerun with --resume replays journaled fitnesses
 * (completed work costs zero simulations) and emits a byte-identical
 * report. A fitness cache keyed by canonical genome guarantees
 * duplicate candidates never re-simulate. --seed drives the strategy's
 * RNG and is stamped into every run and the report, so a study is
 * replayable from its report alone.
 *
 * --prof-out FILE wraps the study in a phase-timer Profiler and writes
 * a BENCH_*.json document (schema "mrp-bench-v1") with the
 * sweep.generation / sweep.ask / sweep.simulate / sweep.tell phase
 * tree and total simulated throughput.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "prof/export.hpp"
#include "runner/report.hpp"
#include "sweep/study.hpp"
#include "trace/spec.hpp"
#include "util/logging.hpp"

namespace {

using namespace mrp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mrp_sweep_cli [--strategy genetic|random|halving|"
        "grid]\n"
        "                     [--generations N] [--population N]\n"
        "                     [--budget-insts N] "
        "[--workloads I,J,...]\n"
        "                     [--corpus FAM[,FAM...]] "
        "[--decode-ahead]\n"
        "                     [--llc-kb N]\n"
        "                     [--slots N] [--search-thresholds]\n"
        "                     [--search-sampler]\n"
        "                     [--objective geomean|mean] [--seed N]\n"
        "                     [--jobs N] [--journal FILE] [--resume]\n"
        "                     [--out FILE] [--prof-out FILE]\n"
        "       genetic: [--tournament N] [--crossover R]\n"
        "                [--mutation R] [--elites N]\n"
        "       halving: [--initial N] [--eta N] [--rungs N]\n"
        "       grid:    --grid GENE:V1,V2,...  (one axis each)\n");
    return 2;
}

std::vector<std::string>
splitCommas(const std::string& s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const auto comma = s.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

/** One streaming-family corpus member ("zipf[:THETA]", "blkio",
 * "phase") at the full corpus length. */
trace::TraceSpec
corpusFamilySpec(const std::string& name, InstCount insts,
                 std::uint64_t seed)
{
    if (name == "zipf" || name.rfind("zipf:", 0) == 0) {
        trace::ZipfParams p;
        p.instructions = insts;
        p.seed = seed;
        if (name.size() > 5) {
            p.theta = std::atof(name.c_str() + 5);
            p.name = name;
        }
        return trace::TraceSpec::zipf(p);
    }
    if (name == "blkio") {
        trace::BlockIoParams p;
        p.instructions = insts;
        p.seed = seed;
        return trace::TraceSpec::blockIo(p);
    }
    if (name == "phase") {
        trace::ZipfParams zp;
        zp.instructions = insts;
        zp.seed = seed;
        trace::BlockIoParams bp;
        bp.instructions = insts;
        bp.seed = seed + 1;
        std::vector<trace::TraceSpec> kids;
        kids.push_back(trace::TraceSpec::zipf(zp));
        kids.push_back(trace::TraceSpec::blockIo(bp));
        return trace::TraceSpec::phaseMix(
            "phase", insts, std::max<InstCount>(insts / 8, 1),
            std::move(kids));
    }
    fatal(ErrorCode::Config,
          "unknown --corpus family '" + name +
              "' (want zipf[:THETA], blkio, or phase)");
}

int run(int argc, char** argv);

} // namespace

int
main(int argc, char** argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "mrp_sweep_cli: %s [%s]\n", e.what(),
                     errorCodeName(e.code()));
        return 2;
    }
}

namespace {

int
run(int argc, char** argv)
{
    std::string strategy_name = "genetic";
    std::string objective_name = "geomean";
    std::string journal_path;
    std::string out_path;
    std::string prof_out_path;
    bool resume = false;
    unsigned generations = 5;
    unsigned population = 16;
    InstCount budget_insts = 400000;
    std::vector<unsigned> workloads = {2,  7,  9,  12, 14,
                                       16, 18, 21, 25, 30};
    std::vector<std::string> corpus_families;
    bool decode_ahead = false;
    Addr llc_kb = 2048;
    unsigned slots = 16;
    bool search_thresholds = false;
    bool search_sampler = false;
    std::uint64_t seed = 1;
    unsigned jobs = 0;
    // genetic knobs
    unsigned tournament = 3;
    double crossover = 0.9;
    double mutation = 0.08;
    unsigned elites = 2;
    // halving knobs
    unsigned initial = 16;
    unsigned eta = 2;
    unsigned rungs = 3;
    std::vector<sweep::GridAxis> grid_axes;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            fatalIf(i + 1 >= argc, "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--strategy") {
            strategy_name = next();
        } else if (arg == "--objective") {
            objective_name = next();
        } else if (arg == "--generations") {
            generations = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--population") {
            population = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--budget-insts") {
            budget_insts = std::strtoull(next(), nullptr, 10);
            fatalIf(budget_insts == 0,
                    "--budget-insts must be positive");
        } else if (arg == "--workloads") {
            workloads.clear();
            for (const auto& w : splitCommas(next()))
                workloads.push_back(static_cast<unsigned>(
                    std::strtoul(w.c_str(), nullptr, 10)));
        } else if (arg == "--corpus") {
            corpus_families = splitCommas(next());
        } else if (arg == "--decode-ahead") {
            decode_ahead = true;
        } else if (arg == "--llc-kb") {
            llc_kb = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--slots") {
            slots = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--search-thresholds") {
            search_thresholds = true;
        } else if (arg == "--search-sampler") {
            search_sampler = true;
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--journal") {
            journal_path = next();
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--prof-out") {
            prof_out_path = next();
        } else if (arg == "--tournament") {
            tournament = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--crossover") {
            crossover = std::atof(next());
        } else if (arg == "--mutation") {
            mutation = std::atof(next());
        } else if (arg == "--elites") {
            elites = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--initial") {
            initial = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--eta") {
            eta = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--rungs") {
            rungs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--grid") {
            // GENE:V1,V2,... — one axis of the cross product.
            const std::string spec = next();
            const auto colon = spec.find(':');
            fatalIf(colon == std::string::npos,
                    "--grid expects GENE:V1,V2,...");
            sweep::GridAxis axis;
            axis.gene = std::strtoul(spec.c_str(), nullptr, 10);
            for (const auto& v :
                 splitCommas(spec.substr(colon + 1)))
                axis.values.push_back(
                    std::atoi(v.c_str()));
            grid_axes.push_back(std::move(axis));
        } else {
            return usage();
        }
    }
    fatalIf(workloads.empty(), "--workloads list is empty");

    sweep::SearchSpace space;
    space.featureSlots = slots;
    space.searchThresholds = search_thresholds;
    space.searchSampler = search_sampler;

    sweep::CorpusConfig corpus;
    corpus.workloads = workloads;
    for (std::size_t f = 0; f < corpus_families.size(); ++f)
        corpus.corpus.push_back(corpusFamilySpec(
            corpus_families[f], budget_insts, seed + f));
    corpus.fullInstructions = budget_insts;
    corpus.sim.hierarchy.llcBytes = llc_kb * 1024;
    corpus.jobs = jobs;
    corpus.openOptions.decodeAhead = decode_ahead;
    const auto evaluator =
        std::make_shared<sweep::CorpusEvaluator>(corpus);
    sweep::CorpusMpkiObjective objective(
        evaluator, objective_name == "mean"
                       ? sweep::CorpusMpkiObjective::Aggregate::Mean
                       : sweep::CorpusMpkiObjective::Aggregate::Geomean);
    if (objective_name != "mean" && objective_name != "geomean")
        return usage();

    std::unique_ptr<sweep::Strategy> strategy;
    if (strategy_name == "genetic") {
        sweep::GeneticStrategy::Config gc;
        gc.generations = generations;
        gc.population = population;
        gc.tournament = tournament;
        gc.crossoverRate = crossover;
        gc.mutationRate = mutation;
        gc.elites = elites;
        // Start from the paper-default configuration so the search
        // can only improve on it (elitism keeps the incumbent alive).
        // A space with fewer slots than the paper's 16 features can't
        // hold the incumbent; those searches start purely random.
        if (space.base.predictor.features.size() <= space.featureSlots)
            gc.seeds.push_back(space.encode(space.base));
        strategy =
            std::make_unique<sweep::GeneticStrategy>(space, gc, seed);
    } else if (strategy_name == "random") {
        strategy = std::make_unique<sweep::RandomStrategy>(
            space, generations, population, seed);
    } else if (strategy_name == "halving") {
        sweep::HalvingStrategy::Config hc;
        hc.initial = initial;
        hc.eta = eta;
        hc.rungs = rungs;
        hc.fullInstructions = budget_insts;
        strategy =
            std::make_unique<sweep::HalvingStrategy>(space, hc, seed);
    } else if (strategy_name == "grid") {
        fatalIf(grid_axes.empty(),
                "--strategy grid needs at least one --grid axis");
        strategy = std::make_unique<sweep::GridStrategy>(
            space, space.encode(space.base), std::move(grid_axes));
    } else {
        return usage();
    }

    sweep::StudyConfig scfg;
    scfg.name = "mrp_sweep_cli";
    scfg.seed = seed;
    scfg.jobs = jobs;
    scfg.journalPath = journal_path;
    if (resume) {
        fatalIf(journal_path.empty(), "--resume requires --journal");
        std::ifstream probe(journal_path);
        if (!probe)
            std::fprintf(stderr,
                         "note: journal %s not found; starting cold\n",
                         journal_path.c_str());
        scfg.resume = true;
    }
    sweep::Study study(space, *strategy, objective, scfg);

    sweep::StudyResult result;
    if (!prof_out_path.empty()) {
        prof::Profiler profiler;
        {
            const prof::Attach attach(profiler);
            result = study.run();
        }
        auto profile = profiler.finish();
        std::uint64_t insts = 0, accesses = 0;
        for (const auto& o : result.candidates) {
            if (o.cached)
                continue;
            insts += o.instructions;
            accesses += o.llcDemandAccesses;
        }
        profile.setThroughput(insts, accesses);
        prof::BenchRun br;
        br.label = "study/" + strategy_name;
        br.benchmark = scfg.name;
        br.policy = strategy->name();
        br.profile = std::move(profile);
        runner::writeFile(prof_out_path,
                          prof::benchJson("sweep", {br},
                                          prof::machineInfo(),
                                          prof::gitSha()));
        std::fprintf(stderr, "wrote %s\n", prof_out_path.c_str());
    } else {
        result = study.run();
    }

    const std::string report = study.reportJson(result);
    if (out_path.empty()) {
        std::fputs(report.c_str(), stdout);
    } else {
        runner::writeFile(out_path, report);
        std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }

    // Human summary on stderr so stdout stays machine-readable.
    for (const auto& g : result.generations)
        std::fprintf(stderr,
                     "gen %u: %zu candidates (%zu simulated, %zu "
                     "cached), best fitness %.4f, mean %.4f\n",
                     g.generation, g.evaluations, g.simulations,
                     g.cacheHits, g.bestFitness, g.meanFitness);
    if (result.hasBest) {
        const auto& b = result.candidates[result.bestId];
        std::fprintf(stderr,
                     "best: candidate %zu, corpus MPKI %.4f, %llu "
                     "predictor bits\n",
                     b.id, b.mpki,
                     static_cast<unsigned long long>(b.predictorBits));
        return 0;
    }
    std::fprintf(stderr, "no successful candidate\n");
    return 1;
}

} // namespace
