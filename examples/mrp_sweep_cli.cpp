/**
 * @file
 * Configuration-search driver: optimize MPPPB predictor configurations
 * over the synthetic training corpus with any of the sweep strategies
 * (genetic, random, grid, successive halving), producing the
 * deterministic study report.
 *
 * Usage:
 *   mrp_sweep_cli [shared sweep flags — see sweep_cli_common.hpp]
 *                 [--prof-out FILE]
 *
 * --corpus replaces the suite-index training corpus with streaming
 * generator families ("zipf", "zipf:THETA", "blkio", "phase"): every
 * candidate evaluation streams its workloads chunk by chunk instead of
 * materializing them, so corpus length is bounded by disk-free math
 * only, and successive-halving budget rungs regenerate each family at
 * the rung length (TraceSpec::withInstructions). --decode-ahead
 * overlaps generation/decoding with simulation; like every delivery
 * knob it cannot change the report.
 *
 * The report (stdout, or --out FILE) is a pure function of the search
 * space, strategy, seed, and objective — no wall-clock fields, no
 * dependence on --jobs. --journal makes the study crash-safe: every
 * evaluated candidate is appended to an fsync'd checkpoint journal and
 * the in-flight generation's raw runs stream into FILE.runs, so a
 * killed sweep rerun with --resume replays journaled fitnesses
 * (completed work costs zero simulations) and emits a byte-identical
 * report. A fitness cache keyed by canonical genome guarantees
 * duplicate candidates never re-simulate. --seed drives the strategy's
 * RNG and is stamped into every run and the report, so a study is
 * replayable from its report alone.
 *
 * mrp_broker_cli runs the identical study through the distributed
 * queue broker; their reports are byte-comparable.
 *
 * --prof-out FILE wraps the study in a phase-timer Profiler and writes
 * a BENCH_*.json document (schema "mrp-bench-v1") with the
 * sweep.generation / sweep.ask / sweep.simulate / sweep.tell phase
 * tree and total simulated throughput.
 */

#include <cstdio>
#include <memory>
#include <string>

#include "prof/export.hpp"
#include "sweep_cli_common.hpp"

namespace {

using namespace mrp;

int
usage()
{
    std::fprintf(stderr, "usage: mrp_sweep_cli [--prof-out FILE]\n%s",
                 cli::kSweepUsage);
    return 2;
}

int
run(int argc, char** argv)
{
    cli::SweepCliConfig cfg;
    std::string prof_out_path;
    for (int i = 1; i < argc; ++i) {
        if (cli::parseSweepArg(cfg, argc, argv, i))
            continue;
        const std::string arg = argv[i];
        if (arg == "--prof-out") {
            fatalIf(i + 1 >= argc, "missing value for " + arg);
            prof_out_path = argv[++i];
        } else {
            return usage();
        }
    }

    const auto setup = cli::buildStudySetup(cfg);
    if (!setup)
        return usage();
    sweep::Study study(setup->space, *setup->strategy,
                       *setup->objective, setup->studyConfig);

    sweep::StudyResult result;
    if (!prof_out_path.empty()) {
        prof::Profiler profiler;
        {
            const prof::Attach attach(profiler);
            result = study.run();
        }
        auto profile = profiler.finish();
        std::uint64_t insts = 0, accesses = 0;
        for (const auto& o : result.candidates) {
            if (o.cached)
                continue;
            insts += o.instructions;
            accesses += o.llcDemandAccesses;
        }
        profile.setThroughput(insts, accesses);
        prof::BenchRun br;
        br.label = "study/" + cfg.strategyName;
        br.benchmark = setup->studyConfig.name;
        br.policy = setup->strategy->name();
        br.profile = std::move(profile);
        runner::writeFile(prof_out_path,
                          prof::benchJson("sweep", {br},
                                          prof::machineInfo(),
                                          prof::gitSha()));
        std::fprintf(stderr, "wrote %s\n", prof_out_path.c_str());
    } else {
        result = study.run();
    }

    cli::maybeWriteMrcProfiles(*setup, cfg);
    return cli::emitStudyReport(study, result, cfg);
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "mrp_sweep_cli: %s [%s]\n", e.what(),
                     errorCodeName(e.code()));
        return 2;
    }
}
