/**
 * @file
 * Distributed sweep driver: the same study mrp_sweep_cli runs, but
 * executed through the crash-tolerant queue broker — jobs are leased
 * from a durable on-disk work queue to mrp_worker processes, so the
 * sweep survives worker kills, hangs, and broker crash/resume.
 *
 * The report is byte-identical to mrp_sweep_cli's for the same study
 * flags, at any --workers count, through any amount of chaos — that
 * equality is the headline determinism check the CI smoke job diffs.
 *
 * Usage:
 *   mrp_broker_cli [shared sweep flags — see sweep_cli_common.hpp]
 *                  [--workers N] [--worker-bin PATH] [--queue FILE]
 *                  [--heartbeat-ms N] [--heartbeat-timeout-ms N]
 *                  [--max-attempts N] [--backoff SECONDS]
 *                  [--restart-budget N] [--worker-arg ARG]...
 *                  [--fault SITE:KIND[:FIRSTHIT[:MAXFIRES]]]...
 *                  [--kill-after-leases N]
 *                  [--abort-after-completions N]
 *                  [--metrics-out FILE]
 *                  [--fleet-trace-out FILE] [--fleet-metrics-out FILE]
 *                  [--straggler-k K]
 *
 * --worker-bin defaults to "mrp_worker" next to this binary. --queue
 * is the durable queue journal: it carries a fingerprint of the exact
 * job set, so reusing one path across different batches is safe (a
 * mismatch starts fresh), and re-running after a crash with the same
 * path replays completed jobs instead of re-simulating them.
 *
 * --fault arms a deterministic fault site in this process AND
 * forwards the same spec to every worker (sites live on both sides of
 * the pipe; each process only fires the sites it visits). --worker-arg
 * forwards a raw extra flag to workers only (e.g. --chaos-wedge).
 * --kill-after-leases / --abort-after-completions are the scripted
 * chaos hooks: SIGKILL the worker granted the Nth lease, and throw
 * (simulating a broker crash) after the Nth completion.
 *
 * --metrics-out writes the broker's queue telemetry (lease expiries,
 * requeues, worker restarts, heartbeat-latency histogram) plus the
 * runner.* batch counters as a metrics JSON document via the
 * standard telemetry export path.
 *
 * --fleet-trace-out / --fleet-metrics-out switch on fleet
 * observability (src/obs): workers ship per-run telemetry snapshots
 * and phase trees over the wire, and the broker-side FleetCollector
 * merges them into one Chrome trace_event timeline (open it in
 * Perfetto or chrome://tracing) and one fleet metrics document with
 * per-worker lease histograms and straggler analytics
 * (--straggler-k sets the MAD threshold, default 3.5). Strictly
 * observation-only: the study report bytes are identical with these
 * flags on or off.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "queue/broker.hpp"
#include "sweep_cli_common.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/session.hpp"
#include "util/fault_injection.hpp"

namespace {

using namespace mrp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mrp_broker_cli [--workers N] [--worker-bin PATH]\n"
        "       [--queue FILE] [--heartbeat-ms N]\n"
        "       [--heartbeat-timeout-ms N] [--max-attempts N]\n"
        "       [--backoff SECONDS] [--restart-budget N]\n"
        "       [--worker-arg ARG]... [--fault SPEC]...\n"
        "       [--kill-after-leases N] [--abort-after-completions N]\n"
        "       [--metrics-out FILE] [--fleet-trace-out FILE]\n"
        "       [--fleet-metrics-out FILE] [--straggler-k K]\n%s",
        cli::kSweepUsage);
    return 2;
}

/** "dir/of/argv0/mrp_worker", or plain "mrp_worker" (PATH lookup via
 * execvp) when argv[0] has no directory part. */
std::string
defaultWorkerBin(const char* argv0)
{
    const std::string self = argv0;
    const auto slash = self.rfind('/');
    if (slash == std::string::npos)
        return "mrp_worker";
    return self.substr(0, slash + 1) + "mrp_worker";
}

int
run(int argc, char** argv)
{
    cli::SweepCliConfig cfg;
    queue::BrokerConfig bcfg;
    bcfg.workerBin = defaultWorkerBin(argv[0]);
    bcfg.queuePath = "mrp_broker.queue";
    std::string metrics_out;
    std::string fleet_trace_out;
    std::string fleet_metrics_out;
    double straggler_k = 3.5;

    for (int i = 1; i < argc; ++i) {
        if (cli::parseSweepArg(cfg, argc, argv, i))
            continue;
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            fatalIf(i + 1 >= argc, ErrorCode::Config,
                    "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--workers") {
            bcfg.workers = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--worker-bin") {
            bcfg.workerBin = next();
        } else if (arg == "--queue") {
            bcfg.queuePath = next();
        } else if (arg == "--heartbeat-ms") {
            bcfg.heartbeatMs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--heartbeat-timeout-ms") {
            bcfg.heartbeatTimeoutMs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--max-attempts") {
            bcfg.maxAttempts = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--backoff") {
            bcfg.backoffSeconds = std::atof(next());
        } else if (arg == "--restart-budget") {
            bcfg.workerRestartBudget = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--worker-arg") {
            bcfg.workerArgs.push_back(next());
        } else if (arg == "--fault") {
            // Both sides of the pipe: arm here, forward to workers.
            const std::string spec = next();
            fault::armFromSpec(spec);
            bcfg.workerArgs.push_back("--fault");
            bcfg.workerArgs.push_back(spec);
        } else if (arg == "--kill-after-leases") {
            bcfg.killWorkerAfterLeases =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--abort-after-completions") {
            bcfg.chaosAbortAfterCompletions =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--metrics-out") {
            metrics_out = next();
        } else if (arg == "--fleet-trace-out") {
            fleet_trace_out = next();
        } else if (arg == "--fleet-metrics-out") {
            fleet_metrics_out = next();
        } else if (arg == "--straggler-k") {
            straggler_k = std::atof(next());
        } else {
            return usage();
        }
    }

    telemetry::MetricsRegistry registry;
    bcfg.metrics = &registry;
    std::unique_ptr<obs::FleetCollector> collector;
    if (!fleet_trace_out.empty() || !fleet_metrics_out.empty()) {
        obs::FleetConfig fcfg;
        fcfg.stragglerK = straggler_k;
        collector = std::make_unique<obs::FleetCollector>(fcfg);
        bcfg.collector = collector.get();
    }
    const queue::Broker broker(bcfg);

    const auto setup = cli::buildStudySetup(cfg);
    if (!setup)
        return usage();
    setup->studyConfig.executor = &broker;
    sweep::Study study(setup->space, *setup->strategy,
                       *setup->objective, setup->studyConfig);
    const sweep::StudyResult result = study.run();

    if (!metrics_out.empty()) {
        telemetry::RunTelemetry rt;
        rt.finalSnapshot = registry.snapshot();
        runner::writeFile(metrics_out,
                          telemetry::metricsJson(rt, "") + "\n");
        std::fprintf(stderr, "wrote %s\n", metrics_out.c_str());
    }
    if (collector) {
        if (!fleet_trace_out.empty()) {
            runner::writeFile(fleet_trace_out,
                              collector->traceJson());
            std::fprintf(stderr, "wrote %s\n",
                         fleet_trace_out.c_str());
        }
        if (!fleet_metrics_out.empty()) {
            const telemetry::Snapshot broker_snap =
                registry.snapshot();
            runner::writeFile(
                fleet_metrics_out,
                collector->metricsJson(&broker_snap) + "\n");
            std::fprintf(stderr, "wrote %s\n",
                         fleet_metrics_out.c_str());
        }
        std::fputs(collector->stragglerText().c_str(), stderr);
    }

    cli::maybeWriteMrcProfiles(*setup, cfg);
    return cli::emitStudyReport(study, result, cfg);
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "mrp_broker_cli: %s [%s]\n", e.what(),
                     errorCodeName(e.code()));
        return 2;
    }
}
